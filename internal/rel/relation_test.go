package rel

import (
	"fmt"
	"testing"
	"testing/quick"
)

func sampleRelation() *Relation {
	r := NewRelation("protein", TextSchema("id", "accession", "name"))
	r.AppendRaw("1", "P12345", "hemoglobin")
	r.AppendRaw("2", "P67890", "myoglobin")
	r.AppendRaw("3", "Q11111", "insulin")
	return r
}

func TestSchemaIndexCaseInsensitive(t *testing.T) {
	s := TextSchema("Accession", "Name")
	if i := s.Index("accession"); i != 0 {
		t.Errorf("Index(accession) = %d want 0", i)
	}
	if i := s.Index("NAME"); i != 1 {
		t.Errorf("Index(NAME) = %d want 1", i)
	}
	if i := s.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d want -1", i)
	}
}

func TestSchemaNames(t *testing.T) {
	s := TextSchema("a", "b", "c")
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names() = %v", names)
	}
}

func TestRelationAppendPadsAndTruncates(t *testing.T) {
	r := NewRelation("t", TextSchema("a", "b"))
	r.Append(Tuple{Str("x")})
	r.Append(Tuple{Str("x"), Str("y"), Str("z")})
	if len(r.Tuples[0]) != 2 || !r.Tuples[0][1].IsNull() {
		t.Errorf("short tuple not padded: %v", r.Tuples[0])
	}
	if len(r.Tuples[1]) != 2 {
		t.Errorf("long tuple not truncated: %v", r.Tuples[1])
	}
}

func TestRelationColumnValues(t *testing.T) {
	r := sampleRelation()
	vals, err := r.ColumnValues("accession")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].AsString() != "P12345" {
		t.Errorf("ColumnValues = %v", vals)
	}
	if _, err := r.ColumnValues("nope"); err == nil {
		t.Error("expected error for missing column")
	}
}

func TestRelationIsUnique(t *testing.T) {
	r := sampleRelation()
	if u, _ := r.IsUnique("accession"); !u {
		t.Error("accession should be unique")
	}
	r.AppendRaw("4", "P12345", "dup")
	if u, _ := r.IsUnique("accession"); u {
		t.Error("accession should no longer be unique")
	}
}

func TestRelationIsUniqueRejectsNulls(t *testing.T) {
	r := NewRelation("t", TextSchema("a"))
	r.Append(Tuple{Str("x")})
	r.Append(Tuple{Null()})
	if u, _ := r.IsUnique("a"); u {
		t.Error("column with NULL must not count as unique key candidate")
	}
}

func TestRelationDistinctValues(t *testing.T) {
	r := NewRelation("t", TextSchema("a"))
	r.AppendRaw("x")
	r.AppendRaw("x")
	r.AppendRaw("y")
	r.Append(Tuple{Null()})
	set, err := r.DistinctValues("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("distinct = %d want 2 (NULLs excluded)", len(set))
	}
}

func TestRelationLookup(t *testing.T) {
	r := sampleRelation()
	ts, err := r.Lookup("name", Str("insulin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0][1].AsString() != "Q11111" {
		t.Errorf("Lookup = %v", ts)
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := sampleRelation()
	r.ForeignKeys = append(r.ForeignKeys, ForeignKey{"protein", "id", "other", "pid"})
	c := r.Clone()
	c.Tuples[0][1] = Str("CHANGED")
	c.ForeignKeys[0].ToRelation = "changed"
	if r.Tuples[0][1].AsString() != "P12345" {
		t.Error("clone shares tuple storage with original")
	}
	if r.ForeignKeys[0].ToRelation != "other" {
		t.Error("clone shares FK storage with original")
	}
}

func TestDatabaseCRUD(t *testing.T) {
	db := NewDatabase("src")
	db.Create("a", TextSchema("x"))
	db.Create("b", TextSchema("y"))
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.Relation("A") == nil {
		t.Error("lookup should be case-insensitive")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want insertion order", names)
	}
	db.Drop("a")
	if db.Len() != 1 || db.Relation("a") != nil {
		t.Error("Drop failed")
	}
	if got := db.Names(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Names after drop = %v", got)
	}
}

func TestDatabasePutReplaces(t *testing.T) {
	db := NewDatabase("src")
	db.Create("t", TextSchema("a"))
	r2 := NewRelation("t", TextSchema("a", "b"))
	db.Put(r2)
	if db.Len() != 1 {
		t.Fatalf("Len = %d want 1", db.Len())
	}
	if db.Relation("t").Schema.Len() != 2 {
		t.Error("Put did not replace relation")
	}
}

func TestDatabaseTotalTuples(t *testing.T) {
	db := NewDatabase("src")
	a := db.Create("a", TextSchema("x"))
	b := db.Create("b", TextSchema("y"))
	a.AppendRaw("1")
	a.AppendRaw("2")
	b.AppendRaw("3")
	if n := db.TotalTuples(); n != 3 {
		t.Errorf("TotalTuples = %d want 3", n)
	}
}

func TestForeignKeyString(t *testing.T) {
	fk := ForeignKey{"a", "x", "b", "y"}
	if fk.String() != "a.x -> b.y" {
		t.Errorf("String = %q", fk.String())
	}
}

// Property: after appending n distinct raw values, Cardinality is n and
// DistinctValues has n entries.
func TestRelationDistinctCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRelation("t", TextSchema("a"))
		for i := 0; i < int(n); i++ {
			r.AppendRaw(fmt.Sprintf("v%d", i))
		}
		set, _ := r.DistinctValues("a")
		return r.Cardinality() == int(n) && len(set) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestShallowClone: the clone shares relation contents but owns its
// name map — adding or dropping on one side is invisible to the other.
func TestShallowClone(t *testing.T) {
	db := NewDatabase("wh")
	a := db.Create("a", TextSchema("x"))
	a.AppendRaw("1")

	snap := db.ShallowClone()
	db.Create("b", TextSchema("y"))
	db.Drop("a")

	if snap.Relation("b") != nil {
		t.Error("clone sees relation added after the snapshot")
	}
	if snap.Relation("a") == nil {
		t.Fatal("clone lost relation dropped from the original")
	}
	if snap.Relation("a") != a {
		t.Error("clone does not share the relation value")
	}
	if got := snap.Names(); len(got) != 1 || got[0] != "a" {
		t.Errorf("clone Names = %v, want [a]", got)
	}
	if db.Relation("b") == nil {
		t.Error("original lost its new relation")
	}
}
