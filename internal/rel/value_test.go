package rel

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.14), KindFloat},
		{Str("abc"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
	if Str("").IsNull() {
		t.Error("Str(\"\").IsNull() = true; empty string is not NULL")
	}
}

func TestValueAsInt(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
		ok   bool
	}{
		{Int(7), 7, true},
		{Float(7.9), 7, true},
		{Str("12"), 12, true},
		{Str(" 12 "), 12, true},
		{Str("x"), 0, false},
		{Bool(true), 1, true},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsInt()
		if got != c.want || ok != c.ok {
			t.Errorf("%v.AsInt() = %d,%v want %d,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Str("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("Str(2.5).AsFloat() = %v,%v", f, ok)
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("Null().AsFloat() ok = true")
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Int(-3), "-3"},
		{Float(0.5), "0.5"},
		{Str("hello"), "hello"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%v.AsString() = %q want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false (SQL three-valued logic)")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL = 0 must be false")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) should not equal Str(\"3\") — no implicit text coercion")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Int(1), -1},
		{Int(1), Null(), 1},
		{Null(), Null(), 0},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	// Keys must distinguish values of different kinds that render the same.
	if Int(1).Key() == Str("1").Key() {
		t.Error("Key collision between Int(1) and Str(\"1\")")
	}
	// But numerically equal int/float share a key.
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("Int(2) and Float(2.0) should share a key")
	}
	if Str("true").Key() == Bool(true).Key() {
		t.Error("Key collision between Str(\"true\") and Bool(true)")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		raw  string
		want Value
	}{
		{"", Null()},
		{"  ", Null()},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"FALSE", Bool(false)},
		{"P12345", Str("P12345")},
	}
	for _, c := range cases {
		got := Parse(c.raw)
		if got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q).Kind = %v want %v", c.raw, got.Kind(), c.want.Kind())
			continue
		}
		if !got.IsNull() && !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v want %v", c.raw, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and Equal implies Compare==0 for
// non-null values.
func TestValueCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		if va.Equal(vb) != (va.Compare(vb) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for strings, Key is injective.
func TestValueKeyInjectiveOnStrings(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return Str(a).Key() == Str(b).Key()
		}
		return Str(a).Key() != Str(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse round-trips integers through AsString.
func TestParseIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := Parse(Int(i).AsString())
		got, ok := v.AsInt()
		return ok && got == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
