package rel

import (
	"reflect"
	"testing"
)

func indexedRelation() *Relation {
	r := NewRelation("protein", NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "acc", Kind: KindString},
		Column{Name: "org_id", Kind: KindInt},
	))
	r.PrimaryKey = "id"
	r.UniqueCols["acc"] = true
	r.ForeignKeys = append(r.ForeignKeys, ForeignKey{
		FromRelation: "protein", FromColumn: "org_id",
		ToRelation: "organism", ToColumn: "id",
	})
	r.Append(Tuple{Int(1), Str("P1"), Int(10)})
	r.Append(Tuple{Int(2), Str("P2"), Int(10)})
	r.Append(Tuple{Int(3), Str("P3"), Int(20)})
	return r
}

func TestEnsureIndexes(t *testing.T) {
	r := indexedRelation()
	r.EnsureIndexes()
	want := []string{"acc", "id", "org_id"}
	if got := r.IndexedColumns(); !reflect.DeepEqual(got, want) {
		t.Fatalf("IndexedColumns = %v, want %v", got, want)
	}
	if ix := r.HashIndex("ID"); ix == nil || ix.Len() != 3 {
		t.Fatalf("case-insensitive HashIndex(ID) = %v", ix)
	}
	if ps := r.HashIndex("org_id").Lookup(Int(10)); !reflect.DeepEqual(ps, []int{0, 1}) {
		t.Errorf("Lookup(org_id=10) = %v, want [0 1]", ps)
	}
}

func TestIndexMaintainedOnAppend(t *testing.T) {
	r := indexedRelation()
	r.EnsureIndexes()
	r.Append(Tuple{Int(4), Str("P4"), Int(20)})
	r.AppendStrings("5", "P5", "20")
	if ps := r.HashIndex("org_id").Lookup(Int(20)); !reflect.DeepEqual(ps, []int{2, 3, 4}) {
		t.Errorf("Lookup(org_id=20) after appends = %v, want [2 3 4]", ps)
	}
	if ps := r.HashIndex("id").Lookup(Int(5)); !reflect.DeepEqual(ps, []int{4}) {
		t.Errorf("Lookup(id=5) = %v (AppendStrings must maintain indexes)", ps)
	}
}

func TestIndexSkipsNulls(t *testing.T) {
	r := indexedRelation()
	r.Append(Tuple{Int(4), Null(), Null()})
	r.EnsureIndexes()
	if ps := r.HashIndex("acc").Lookup(Null()); ps != nil {
		t.Errorf("Lookup(NULL) = %v, want nil", ps)
	}
	if n := r.HashIndex("acc").Len(); n != 3 {
		t.Errorf("acc index has %d keys, want 3 (NULL unindexed)", n)
	}
}

func TestLookupRoutesThroughIndex(t *testing.T) {
	r := indexedRelation()
	// Without an index Lookup scans; with one it probes. Results agree.
	scan, err := r.Lookup("acc", Str("P2"))
	if err != nil {
		t.Fatal(err)
	}
	r.EnsureIndexes()
	probe, err := r.Lookup("acc", Str("P2"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scan, probe) || len(probe) != 1 {
		t.Fatalf("scan %v vs probe %v", scan, probe)
	}
	// Cross-kind numeric probe: Key unifies Int and integral Float.
	ps, err := r.LookupPositions("id", Float(2))
	if err != nil || !reflect.DeepEqual(ps, []int{1}) {
		t.Errorf("LookupPositions(id, 2.0) = %v, %v", ps, err)
	}
	if _, err := r.Lookup("missing", Int(1)); err == nil {
		t.Error("Lookup on unknown column succeeded")
	}
}

func TestRebuildIndexes(t *testing.T) {
	r := indexedRelation()
	r.EnsureIndexes()
	// Mutate in place (what UPDATE does), then rebuild.
	r.Tuples[0][2] = Int(20)
	r.Tuples = r.Tuples[:2]
	r.RebuildIndexes()
	if ps := r.HashIndex("org_id").Lookup(Int(20)); !reflect.DeepEqual(ps, []int{0}) {
		t.Errorf("after rebuild Lookup(org_id=20) = %v, want [0]", ps)
	}
	if ps := r.HashIndex("id").Lookup(Int(3)); ps != nil {
		t.Errorf("deleted tuple still indexed: %v", ps)
	}
}

func TestCloneDropsSharedNothing(t *testing.T) {
	r := indexedRelation()
	r.EnsureIndexes()
	c := r.Clone()
	if cols := c.IndexedColumns(); len(cols) != 0 {
		t.Fatalf("Clone carried indexes %v; they must be rebuilt explicitly", cols)
	}
	c.EnsureIndexes()
	c.Append(Tuple{Int(9), Str("P9"), Int(30)})
	if ps := r.HashIndex("id").Lookup(Int(9)); ps != nil {
		t.Errorf("append on clone leaked into original index: %v", ps)
	}
}

func TestCopyIndexesFrom(t *testing.T) {
	r := indexedRelation()
	r.EnsureIndexes()
	c := r.Clone()
	c.CopyIndexesFrom(r)
	if got := c.IndexedColumns(); !reflect.DeepEqual(got, r.IndexedColumns()) {
		t.Fatalf("copied columns = %v, want %v", got, r.IndexedColumns())
	}
	if ps := c.HashIndex("org_id").Lookup(Int(10)); !reflect.DeepEqual(ps, []int{0, 1}) {
		t.Fatalf("copied Lookup(org_id=10) = %v", ps)
	}
	// Buckets are copied, not shared: appends stay independent.
	c.Append(Tuple{Int(4), Str("P4"), Int(10)})
	if ps := r.HashIndex("org_id").Lookup(Int(10)); len(ps) != 2 {
		t.Errorf("append on copy leaked into source buckets: %v", ps)
	}
	// Cardinality mismatch copies nothing.
	short := NewRelation(r.Name, r.Schema.Clone())
	short.CopyIndexesFrom(r)
	if cols := short.IndexedColumns(); len(cols) != 0 {
		t.Errorf("mismatched-cardinality copy built %v", cols)
	}
}

func TestShallowCloneSharesIndexes(t *testing.T) {
	db := NewDatabase("w")
	r := indexedRelation()
	r.EnsureIndexes()
	db.Put(r)
	snap := db.ShallowClone()
	if snap.Relation("protein").HashIndex("id") != r.HashIndex("id") {
		t.Error("ShallowClone must share relation indexes structurally")
	}
}

func TestKeyJoinCollisionFree(t *testing.T) {
	a := KeyJoin("a\x01", "b")
	b := KeyJoin("a", "\x01b")
	if a == b {
		t.Fatalf("KeyJoin collided: %q", a)
	}
	// The historical separator-join encoding collides on exactly this
	// pair of tuples; TupleKey must keep them distinct.
	t1 := Tuple{Str("x"), Str("y\x01sz")}
	t2 := Tuple{Str("x\x01sy"), Str("z")}
	if TupleKey(t1) == TupleKey(t2) {
		t.Fatalf("TupleKey collided: %q", TupleKey(t1))
	}
	if TupleKey(t1) != TupleKey(Tuple{Str("x"), Str("y\x01sz")}) {
		t.Error("TupleKey not deterministic")
	}
}
