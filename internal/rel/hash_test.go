package rel

import (
	"math"
	"testing"
)

// hashCorpus covers every Key() equivalence edge: ints around the
// float53 round-trip boundary, integral and non-integral floats, NaN,
// signed zero, infinities, strings embedding key-prefix bytes, bools,
// and NULL.
func hashCorpus() []Value {
	return []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(7), Int(1 << 53), Int(1<<53 + 1),
		Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(math.Copysign(0, -1)), Float(1), Float(7), Float(1.5), Float(-2.25),
		Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)),
		Float(float64(1 << 53)), Float(1e300),
		Str(""), Str("a"), Str("\x00i1"), Str("\x00N"), Str("s"), Str("7"), Str("true"),
		Bool(true), Bool(false),
	}
}

// TestKeyEqualMatchesKeyString: KeyEqual must agree with Key() string
// equality on every pair, and Hash64 must be constant on each
// equivalence class.
func TestKeyEqualMatchesKeyString(t *testing.T) {
	corpus := hashCorpus()
	for _, a := range corpus {
		for _, b := range corpus {
			want := a.Key() == b.Key()
			if got := a.KeyEqual(b); got != want {
				t.Errorf("KeyEqual(%v, %v) = %v, Key strings %q vs %q", a, b, got, a.Key(), b.Key())
			}
			if want && a.Hash64() != b.Hash64() {
				t.Errorf("Hash64(%v) != Hash64(%v) but keys equal (%q)", a, b, a.Key())
			}
		}
	}
}

// TestAppendKeyMatchesKey: the scratch-buffer variants must reproduce
// Key()/TupleKey() byte for byte.
func TestAppendKeyMatchesKey(t *testing.T) {
	corpus := hashCorpus()
	var buf []byte
	for _, v := range corpus {
		buf = v.AppendKey(buf[:0])
		if string(buf) != v.Key() {
			t.Errorf("AppendKey(%v) = %q, Key() = %q", v, buf, v.Key())
		}
	}
	tuples := []Tuple{
		{},
		{Null()},
		{Str("a\x01"), Str("b")},
		{Str("a"), Str("\x01b")},
		{Int(1), Float(1.5), Bool(true), Null(), Str("long string to overflow any tiny buffer: 0123456789012345678901234567890123456789")},
	}
	for _, tu := range tuples {
		buf = AppendTupleKey(buf[:0], tu)
		if string(buf) != TupleKey(tu) {
			t.Errorf("AppendTupleKey(%v) = %q, TupleKey = %q", tu, buf, TupleKey(tu))
		}
	}
}

// TestTupleKeyEqualMatchesTupleKey: tuple identity under the hash path
// agrees with the canonical string encoding, including the shifted
// length-prefix cases the encoding exists to keep apart.
func TestTupleKeyEqualMatchesTupleKey(t *testing.T) {
	tuples := []Tuple{
		{},
		{Null()}, {Null(), Null()},
		{Int(1), Int(2)}, {Float(1), Int(2)}, {Int(1), Float(2.5)},
		{Str("a\x01"), Str("b")}, {Str("a"), Str("\x01b")},
		{Str("ab"), Str("c")}, {Str("a"), Str("bc")},
		{Float(math.NaN())}, {Float(math.NaN()), Int(1)},
	}
	for _, a := range tuples {
		for _, b := range tuples {
			want := TupleKey(a) == TupleKey(b)
			if got := TupleKeyEqual(a, b); got != want {
				t.Errorf("TupleKeyEqual(%v, %v) = %v, want %v", a, b, got, want)
			}
			if want && TupleHash64(a) != TupleHash64(b) {
				t.Errorf("TupleHash64 mismatch for equal tuples %v, %v", a, b)
			}
		}
	}
}

// TestIndexZeroAllocLookup: probing a built index must not allocate.
func TestIndexZeroAllocLookup(t *testing.T) {
	r := NewRelation("t", NewSchema(Column{Name: "id", Kind: KindInt}))
	for i := 0; i < 1000; i++ {
		r.Append(Tuple{Int(int64(i % 37))})
	}
	if _, err := r.EnsureIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := r.HashIndex("id")
	probe := Int(11)
	allocs := testing.AllocsPerRun(200, func() {
		if len(ix.Lookup(probe)) == 0 {
			t.Fatal("lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Index.Lookup allocated %.1f allocs/op, want 0", allocs)
	}
}
