// Package rel implements the in-memory relational substrate that ALADIN
// builds on. The paper assumes a relational database as the basis of the
// warehouse (Section 1: "ALADIN uses a relational database as its basis");
// this package provides typed values, schemas, relations, and a catalog,
// deliberately without requiring any integrity constraints up front —
// constraints are *discovered* later by the profiling and discovery layers.
package rel

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types the engine understands. Imported
// life-science data is frequently untyped text, so KindString is the
// default for generic parsers; the profiler may later observe that a
// column is numeric.
type Kind int

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an uninterpreted text value.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a single relational value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String returns a text value. The name collides with fmt.Stringer on
// purpose-adjacent grounds; construction reads as rel.Str to avoid that.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Kind returns the kind of v.
func (v Value) Kind() Kind { return v.K }

// AsInt returns the value as an int64, coercing floats and numeric strings.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return i, err == nil
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsFloat returns the value as a float64, coercing ints and numeric strings.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsString renders the value as text. NULL renders as the empty string.
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return ""
}

// AsBool returns the value interpreted as a boolean.
func (v Value) AsBool() (bool, bool) {
	switch v.K {
	case KindBool:
		return v.B, true
	case KindInt:
		return v.I != 0, true
	case KindFloat:
		return v.F != 0, true
	case KindString:
		b, err := strconv.ParseBool(v.S)
		return b, err == nil
	}
	return false, false
}

// String implements fmt.Stringer, quoting text values.
func (v Value) String() string {
	if v.K == KindNull {
		return "NULL"
	}
	if v.K == KindString {
		return strconv.Quote(v.S)
	}
	return v.AsString()
}

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL (SQL semantics); use both IsNull checks where three-valued
// logic is not wanted.
func (v Value) Equal(w Value) bool {
	if v.K == KindNull || w.K == KindNull {
		return false
	}
	if v.K == w.K {
		switch v.K {
		case KindInt:
			return v.I == w.I
		case KindFloat:
			return v.F == w.F
		case KindString:
			return v.S == w.S
		case KindBool:
			return v.B == w.B
		}
	}
	// Numeric cross-kind comparison.
	if isNumeric(v.K) && isNumeric(w.K) {
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		return a == b
	}
	return false
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything.
// Mixed numeric kinds compare numerically; otherwise values compare as
// text, which gives a stable total order over heterogeneous data.
func (v Value) Compare(w Value) int {
	if v.K == KindNull && w.K == KindNull {
		return 0
	}
	if v.K == KindNull {
		return -1
	}
	if w.K == KindNull {
		return 1
	}
	if isNumeric(v.K) && isNumeric(w.K) {
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	a, b := v.AsString(), w.AsString()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Key returns a canonical string usable as a map key such that
// Key(a)==Key(b) iff a.Equal(b) for same-kind values (and numerically
// equal cross-kind numerics).
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "\x00i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x00f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + v.S
	case KindBool:
		if v.B {
			return "\x00b1"
		}
		return "\x00b0"
	}
	return ""
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Parse guesses the most specific kind for a raw text token: integers,
// floats, booleans, otherwise text. Empty strings become NULL.
func Parse(raw string) Value {
	t := strings.TrimSpace(raw)
	if t == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	switch strings.ToLower(t) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	return Str(raw)
}
