package rel

import (
	"strconv"
	"strings"
)

// This file holds the canonical composite-key encoding shared by the
// index layer and the SQL executor's grouping/distinct operators. A
// Value.Key may contain any byte, so composite keys cannot be built by
// joining with a separator — "a\x01" + sep + "b" would collide with
// "a" + sep + "\x01b". Length-prefixing each part makes the encoding
// injective.

// appendKeyPart appends one length-prefixed key part to b.
func appendKeyPart(b *strings.Builder, part string) {
	b.WriteString(strconv.Itoa(len(part)))
	b.WriteByte(':')
	b.WriteString(part)
}

// KeyJoin concatenates canonical value keys (Value.Key results) into one
// collision-free composite key via length-prefixed encoding:
// KeyJoin("a\x01", "b") and KeyJoin("a", "\x01b") stay distinct.
func KeyJoin(keys ...string) string {
	var b strings.Builder
	for _, k := range keys {
		appendKeyPart(&b, k)
	}
	return b.String()
}

// TupleKey renders a whole tuple as one canonical collision-free key:
// TupleKey(a) == TupleKey(b) iff the tuples have equal arity and
// pairwise-equal values (NULLs comparing as identical). It is the
// row-identity key used for DISTINCT, grouping, and UNION deduplication.
func TupleKey(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		appendKeyPart(&b, v.Key())
	}
	return b.String()
}
