package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Index is a persistent hash index over one column of a relation: an
// open-addressing table from the column's values to the positions of
// the tuples holding that value. Keys are 64-bit hashes computed
// directly from the value's kind and payload (Value.Hash64) with a
// KeyEqual check on collision, so probes build no intermediate key
// string and allocate nothing. NULLs are never indexed — they compare
// equal to nothing, so no equality probe can return them.
//
// Indexes are built explicitly (EnsureIndex / EnsureIndexes) and
// maintained incrementally by the Append family. Building is NOT safe
// concurrently with readers of the same relation; the integration
// pipeline builds indexes off-lock on private relations before they are
// published, after which both relation and index are treated as
// immutable and shared structurally across snapshots via
// Database.ShallowClone.
type Index struct {
	// Column is the indexed column's display name.
	Column string
	col    int
	// slots is the open-addressing probe array: entry index + 1, or 0
	// for an empty slot. len(slots) is always a power of two.
	slots []int32
	// entries holds one bucket per distinct key, in first-seen order.
	entries []indexEntry
}

type indexEntry struct {
	hash      uint64
	val       Value
	positions []int
}

const indexMaxLoadNum, indexMaxLoadDen = 3, 4 // grow beyond 75% load

// Len returns the number of distinct indexed keys.
func (ix *Index) Len() int { return len(ix.entries) }

// findEntry returns the entry index for v, or -1. Zero allocations.
func (ix *Index) findEntry(h uint64, v Value) int {
	if len(ix.slots) == 0 {
		return -1
	}
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := ix.slots[i]
		if e == 0 {
			return -1
		}
		ent := &ix.entries[e-1]
		if ent.hash == h && ent.val.KeyEqual(v) {
			return int(e - 1)
		}
	}
}

// Lookup returns the tuple positions whose indexed column equals v
// (bucket semantics: NULL matches nothing, cross-kind numerics match
// numerically). The slice is owned by the index; callers must not
// mutate it.
func (ix *Index) Lookup(v Value) []int {
	if v.IsNull() {
		return nil
	}
	if e := ix.findEntry(v.Hash64(), v); e >= 0 {
		return ix.entries[e].positions
	}
	return nil
}

// add buckets one tuple at the given position.
func (ix *Index) add(t Tuple, pos int) {
	v := t[ix.col]
	if v.IsNull() {
		return
	}
	h := v.Hash64()
	if e := ix.findEntry(h, v); e >= 0 {
		ix.entries[e].positions = append(ix.entries[e].positions, pos)
		return
	}
	ix.entries = append(ix.entries, indexEntry{hash: h, val: v, positions: []int{pos}})
	if len(ix.entries)*indexMaxLoadDen > len(ix.slots)*indexMaxLoadNum {
		ix.grow()
	} else {
		ix.place(h, int32(len(ix.entries)))
	}
}

// place writes entry e (1-based) into the first free slot of h's run.
func (ix *Index) place(h uint64, e int32) {
	mask := uint64(len(ix.slots) - 1)
	i := h & mask
	for ix.slots[i] != 0 {
		i = (i + 1) & mask
	}
	ix.slots[i] = e
}

// grow doubles the slot array and re-places every entry from its stored
// hash — no value is re-hashed.
func (ix *Index) grow() {
	n := len(ix.slots) * 2
	if n < 16 {
		n = 16
	}
	ix.slots = make([]int32, n)
	for e := range ix.entries {
		ix.place(ix.entries[e].hash, int32(e+1))
	}
}

// buildIndex scans the relation once and buckets every tuple position.
func buildIndex(r *Relation, column string, col int) *Index {
	ix := &Index{Column: column, col: col}
	for pos, t := range r.Tuples {
		ix.add(t, pos)
	}
	return ix
}

// HashIndex returns the hash index on the named column, or nil when the
// column is not indexed.
func (r *Relation) HashIndex(column string) *Index {
	return r.indexes[strings.ToLower(column)]
}

// EnsureIndex builds the hash index on the named column if it does not
// exist yet, and returns it. Building scans the relation once; later
// Append calls maintain the index incrementally.
func (r *Relation) EnsureIndex(column string) (*Index, error) {
	col := r.Schema.Index(column)
	if col < 0 {
		return nil, fmt.Errorf("rel: relation %q has no column %q", r.Name, column)
	}
	key := strings.ToLower(column)
	if ix, ok := r.indexes[key]; ok {
		return ix, nil
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*Index)
	}
	ix := buildIndex(r, r.Schema.Columns[col].Name, col)
	r.indexes[key] = ix
	return ix, nil
}

// EnsureIndexes builds the automatic indexes derived from declared
// constraint metadata: the primary key, every declared unique column,
// and both endpoints of every declared foreign key touching this
// relation. Columns missing from the schema (stale metadata) are
// skipped.
func (r *Relation) EnsureIndexes() {
	if r.PrimaryKey != "" {
		_, _ = r.EnsureIndex(r.PrimaryKey)
	}
	for c, u := range r.UniqueCols {
		if u {
			_, _ = r.EnsureIndex(c)
		}
	}
	for _, fk := range r.ForeignKeys {
		if strings.EqualFold(fk.FromRelation, r.Name) {
			_, _ = r.EnsureIndex(fk.FromColumn)
		}
		if strings.EqualFold(fk.ToRelation, r.Name) {
			_, _ = r.EnsureIndex(fk.ToColumn)
		}
	}
}

// RebuildIndexes re-derives every existing index from the current
// tuples. Callers that mutate or remove tuples in place (UPDATE, DELETE)
// use this to keep the relation's indexes fresh; append-only writers
// never need it.
func (r *Relation) RebuildIndexes() {
	for key, ix := range r.indexes {
		r.indexes[key] = buildIndex(r, ix.Column, ix.col)
	}
}

// IndexedColumns returns the display names of the indexed columns,
// sorted alphabetically.
func (r *Relation) IndexedColumns() []string {
	out := make([]string, 0, len(r.indexes))
	for _, ix := range r.indexes {
		out = append(out, ix.Column)
	}
	sort.Strings(out)
	return out
}

// CopyIndexesFrom copies src's hash indexes onto r, which must hold the
// same tuples in the same order (e.g. a fresh Clone of src): bucket
// positions are identical, so copying skips the re-scan and re-hashing
// a rebuild would pay. Buckets are copied, not shared — later appends
// on either relation stay independent. Columns r already indexes are
// left untouched; a cardinality mismatch copies nothing.
func (r *Relation) CopyIndexesFrom(src *Relation) {
	if len(src.indexes) == 0 || len(r.Tuples) != len(src.Tuples) {
		return
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*Index, len(src.indexes))
	}
	for key, ix := range src.indexes {
		if _, exists := r.indexes[key]; exists {
			continue
		}
		c := &Index{Column: ix.Column, col: ix.col,
			slots:   append([]int32(nil), ix.slots...),
			entries: make([]indexEntry, len(ix.entries))}
		for e, ent := range ix.entries {
			c.entries[e] = indexEntry{hash: ent.hash, val: ent.val,
				positions: append([]int(nil), ent.positions...)}
		}
		r.indexes[key] = c
	}
}

// maintainIndexes buckets a freshly appended tuple into every index.
func (r *Relation) maintainIndexes(t Tuple, pos int) {
	for _, ix := range r.indexes {
		ix.add(t, pos)
	}
}
