package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Index is a persistent hash index over one column of a relation: a map
// from canonical value keys (Value.Key) to the positions of the tuples
// holding that value. NULLs are never indexed — they compare equal to
// nothing, so no equality probe can return them.
//
// Indexes are built explicitly (EnsureIndex / EnsureIndexes) and
// maintained incrementally by the Append family. Building is NOT safe
// concurrently with readers of the same relation; the integration
// pipeline builds indexes off-lock on private relations before they are
// published, after which both relation and index are treated as
// immutable and shared structurally across snapshots via
// Database.ShallowClone.
type Index struct {
	// Column is the indexed column's display name.
	Column  string
	col     int
	buckets map[string][]int
}

// Len returns the number of distinct indexed keys.
func (ix *Index) Len() int { return len(ix.buckets) }

// Positions returns the tuple positions whose indexed value has the
// given canonical key (Value.Key), in insertion order. The slice is
// owned by the index; callers must not mutate it.
func (ix *Index) Positions(key string) []int { return ix.buckets[key] }

// Lookup returns the tuple positions whose indexed column equals v
// (Value.Equal semantics: NULL matches nothing, cross-kind numerics
// match numerically).
func (ix *Index) Lookup(v Value) []int {
	if v.IsNull() {
		return nil
	}
	return ix.buckets[v.Key()]
}

// add buckets one tuple at the given position.
func (ix *Index) add(t Tuple, pos int) {
	v := t[ix.col]
	if v.IsNull() {
		return
	}
	k := v.Key()
	ix.buckets[k] = append(ix.buckets[k], pos)
}

// buildIndex scans the relation once and buckets every tuple position.
func buildIndex(r *Relation, column string, col int) *Index {
	ix := &Index{Column: column, col: col, buckets: make(map[string][]int)}
	for pos, t := range r.Tuples {
		ix.add(t, pos)
	}
	return ix
}

// HashIndex returns the hash index on the named column, or nil when the
// column is not indexed.
func (r *Relation) HashIndex(column string) *Index {
	return r.indexes[strings.ToLower(column)]
}

// EnsureIndex builds the hash index on the named column if it does not
// exist yet, and returns it. Building scans the relation once; later
// Append calls maintain the index incrementally.
func (r *Relation) EnsureIndex(column string) (*Index, error) {
	col := r.Schema.Index(column)
	if col < 0 {
		return nil, fmt.Errorf("rel: relation %q has no column %q", r.Name, column)
	}
	key := strings.ToLower(column)
	if ix, ok := r.indexes[key]; ok {
		return ix, nil
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*Index)
	}
	ix := buildIndex(r, r.Schema.Columns[col].Name, col)
	r.indexes[key] = ix
	return ix, nil
}

// EnsureIndexes builds the automatic indexes derived from declared
// constraint metadata: the primary key, every declared unique column,
// and both endpoints of every declared foreign key touching this
// relation. Columns missing from the schema (stale metadata) are
// skipped.
func (r *Relation) EnsureIndexes() {
	if r.PrimaryKey != "" {
		_, _ = r.EnsureIndex(r.PrimaryKey)
	}
	for c, u := range r.UniqueCols {
		if u {
			_, _ = r.EnsureIndex(c)
		}
	}
	for _, fk := range r.ForeignKeys {
		if strings.EqualFold(fk.FromRelation, r.Name) {
			_, _ = r.EnsureIndex(fk.FromColumn)
		}
		if strings.EqualFold(fk.ToRelation, r.Name) {
			_, _ = r.EnsureIndex(fk.ToColumn)
		}
	}
}

// RebuildIndexes re-derives every existing index from the current
// tuples. Callers that mutate or remove tuples in place (UPDATE, DELETE)
// use this to keep the relation's indexes fresh; append-only writers
// never need it.
func (r *Relation) RebuildIndexes() {
	for key, ix := range r.indexes {
		r.indexes[key] = buildIndex(r, ix.Column, ix.col)
	}
}

// IndexedColumns returns the display names of the indexed columns,
// sorted alphabetically.
func (r *Relation) IndexedColumns() []string {
	out := make([]string, 0, len(r.indexes))
	for _, ix := range r.indexes {
		out = append(out, ix.Column)
	}
	sort.Strings(out)
	return out
}

// CopyIndexesFrom copies src's hash indexes onto r, which must hold the
// same tuples in the same order (e.g. a fresh Clone of src): bucket
// positions are identical, so copying skips the re-scan and re-hashing
// a rebuild would pay. Buckets are copied, not shared — later appends
// on either relation stay independent. Columns r already indexes are
// left untouched; a cardinality mismatch copies nothing.
func (r *Relation) CopyIndexesFrom(src *Relation) {
	if len(src.indexes) == 0 || len(r.Tuples) != len(src.Tuples) {
		return
	}
	if r.indexes == nil {
		r.indexes = make(map[string]*Index, len(src.indexes))
	}
	for key, ix := range src.indexes {
		if _, exists := r.indexes[key]; exists {
			continue
		}
		c := &Index{Column: ix.Column, col: ix.col, buckets: make(map[string][]int, len(ix.buckets))}
		for k, positions := range ix.buckets {
			c.buckets[k] = append([]int(nil), positions...)
		}
		r.indexes[key] = c
	}
}

// maintainIndexes buckets a freshly appended tuple into every index.
func (r *Relation) maintainIndexes(t Tuple, pos int) {
	for _, ix := range r.indexes {
		ix.add(t, pos)
	}
}
