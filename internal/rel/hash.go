package rel

import (
	"math"
	"strconv"
)

// This file holds the allocation-free twin of the canonical string keys
// in value.go/key.go: a 64-bit hash computed directly from a Value's
// kind and payload, an equality predicate implementing exactly the
// Value.Key equivalence classes, and append-into-scratch-buffer key
// variants for callers that still need the byte encoding. Hash
// collisions are resolved by KeyEqual, so Hash64 only needs to respect
// the equivalence (KeyEqual(a,b) ⇒ Hash64(a)==Hash64(b)), which it does
// by hashing the same normalized payload Key() would print: integral
// floats hash as their integer value, every NaN hashes to one constant,
// and -0.0 normalizes to integer 0.

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func hashUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(x))
		x >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

// intFloat reports whether f is an integral float that round-trips
// through int64 — the same normalization Key() applies before printing
// a float as "\x00i<n>".
func intFloat(f float64) (int64, bool) {
	i := int64(f)
	if float64(i) == f {
		return i, true
	}
	return 0, false
}

// HashInto folds v into a running FNV-1a hash. Chaining HashInto over a
// tuple's values yields TupleHash64.
func (v Value) HashInto(h uint64) uint64 {
	switch v.K {
	case KindNull:
		return hashByte(h, 'N')
	case KindInt:
		return hashUint64(hashByte(h, 'i'), uint64(v.I))
	case KindFloat:
		if i, ok := intFloat(v.F); ok {
			return hashUint64(hashByte(h, 'i'), uint64(i))
		}
		if math.IsNaN(v.F) {
			return hashByte(hashByte(h, 'f'), 'n')
		}
		return hashUint64(hashByte(h, 'f'), math.Float64bits(v.F))
	case KindString:
		return hashString(hashByte(h, 's'), v.S)
	case KindBool:
		if v.B {
			return hashByte(h, 'T')
		}
		return hashByte(h, 'F')
	}
	return hashByte(h, '?')
}

// Hash64 returns a 64-bit hash of v consistent with KeyEqual:
// KeyEqual(a, b) implies Hash64(a) == Hash64(b). No string is built.
func (v Value) Hash64() uint64 { return v.HashInto(fnvOffset64) }

// KeyEqual reports whether v and w fall into the same Key() equivalence
// class — v.Key() == w.Key() — without building either string. Unlike
// Equal this treats NULL as identical to NULL and NaN as identical to
// NaN, which is exactly the row-identity semantics DISTINCT, GROUP BY,
// and hash-join buckets have always used via string keys.
func (v Value) KeyEqual(w Value) bool {
	switch v.K {
	case KindNull:
		return w.K == KindNull
	case KindString:
		return w.K == KindString && v.S == w.S
	case KindBool:
		return w.K == KindBool && v.B == w.B
	case KindInt:
		switch w.K {
		case KindInt:
			return v.I == w.I
		case KindFloat:
			if wi, ok := intFloat(w.F); ok {
				return wi == v.I
			}
		}
		return false
	case KindFloat:
		vi, vIntegral := intFloat(v.F)
		switch w.K {
		case KindInt:
			return vIntegral && vi == w.I
		case KindFloat:
			wi, wIntegral := intFloat(w.F)
			if vIntegral || wIntegral {
				return vIntegral && wIntegral && vi == wi
			}
			if math.IsNaN(v.F) && math.IsNaN(w.F) {
				return true
			}
			// Both non-integral, non-NaN (well-defined bits): the
			// shortest round-trip format Key() uses is injective here.
			return math.Float64bits(v.F) == math.Float64bits(w.F)
		}
		return false
	}
	return false
}

// AppendKey appends v's canonical key — byte-for-byte v.Key() — to dst
// and returns the extended slice. With a reused scratch buffer this is
// allocation-free.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, 0, 'N')
	case KindInt:
		return strconv.AppendInt(append(dst, 0, 'i'), v.I, 10)
	case KindFloat:
		if i, ok := intFloat(v.F); ok {
			return strconv.AppendInt(append(dst, 0, 'i'), i, 10)
		}
		return strconv.AppendFloat(append(dst, 0, 'f'), v.F, 'g', -1, 64)
	case KindString:
		return append(append(dst, 's'), v.S...)
	case KindBool:
		if v.B {
			return append(dst, 0, 'b', '1')
		}
		return append(dst, 0, 'b', '0')
	}
	return dst
}

// appendKeyPartValue appends one length-prefixed key part (the TupleKey
// wire format) for v without any intermediate allocation: string parts
// know their length up front, and numeric/bool/null parts fit a small
// stack buffer.
func appendKeyPartValue(dst []byte, v Value) []byte {
	if v.K == KindString {
		dst = strconv.AppendInt(dst, int64(len(v.S)+1), 10)
		dst = append(dst, ':', 's')
		return append(dst, v.S...)
	}
	var tmp [40]byte
	part := v.AppendKey(tmp[:0])
	dst = strconv.AppendInt(dst, int64(len(part)), 10)
	dst = append(dst, ':')
	return append(dst, part...)
}

// AppendTupleKey appends the tuple's canonical row-identity key —
// byte-for-byte TupleKey(t) — to dst and returns the extended slice.
// Combined with Go's map[string(x)] lookup optimization this makes
// "have we seen this row" checks allocation-free on the hit path.
func AppendTupleKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = appendKeyPartValue(dst, v)
	}
	return dst
}

// TupleHash64 hashes a whole tuple consistently with TupleKeyEqual.
func TupleHash64(t Tuple) uint64 {
	h := fnvOffset64
	for _, v := range t {
		h = v.HashInto(h)
	}
	return h
}

// TupleKeyEqual reports whether two tuples are the same row under
// TupleKey identity: equal arity and pairwise KeyEqual values.
func TupleKeyEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].KeyEqual(b[i]) {
			return false
		}
	}
	return true
}

// ValuesHash64 hashes a composite key given as a value slice (the
// GROUP BY key case), consistent with ValuesKeyEqual.
func ValuesHash64(vals []Value) uint64 {
	h := fnvOffset64
	for _, v := range vals {
		h = v.HashInto(h)
	}
	return h
}

// ValuesKeyEqual is TupleKeyEqual over plain value slices.
func ValuesKeyEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].KeyEqual(b[i]) {
			return false
		}
	}
	return true
}
