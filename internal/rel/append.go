package rel

// AppendBranch returns a new Relation that extends r without ever
// mutating it — the primitive under batched ingestion's "readers see
// only batch-boundary snapshots" guarantee.
//
// The branch shares r's immutable parts outright (schema, constraint
// metadata) and shares the tuple *prefix* structurally: its Tuples
// field is the same slice header, so appends on the branch land at
// positions >= len(r.Tuples) — beyond what any holder of the old
// header can observe. Readers of r only ever touch indexes below their
// own length; the branch's writer only ever writes at or above it, so
// the two never race even when an append lands in r's spare capacity.
//
// Hash indexes get the same treatment one level down: the branch owns
// fresh slot and entry arrays (appends may add new keys or grow the
// table) but shares the position slices, whose appends are again
// invisible below the old length.
// Stats are cloned (cheap — histograms stay shared) and maintained
// incrementally by Append.
//
// The prefix-sharing argument requires branches to chain linearly: at
// most one live branch may append at a time, and each new branch must
// be taken from the latest published one. Package aladin guarantees
// this by serializing ingestion under its integration lock.
func (r *Relation) AppendBranch() *Relation {
	b := &Relation{
		Name:        r.Name,
		Schema:      r.Schema,
		Tuples:      r.Tuples,
		PrimaryKey:  r.PrimaryKey,
		UniqueCols:  r.UniqueCols,
		ForeignKeys: r.ForeignKeys,
		Stats:       r.Stats.Clone(),
	}
	if len(r.indexes) > 0 {
		b.indexes = make(map[string]*Index, len(r.indexes))
		for key, ix := range r.indexes {
			b.indexes[key] = &Index{Column: ix.Column, col: ix.col,
				slots:   append([]int32(nil), ix.slots...),
				entries: append([]indexEntry(nil), ix.entries...)}
		}
	}
	return b
}
