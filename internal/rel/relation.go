package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with fast name lookup.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names are
// case-insensitive for lookup but preserved for display.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[strings.ToLower(c.Name)] = i
	}
	return s
}

// TextSchema builds a schema of all-text columns from names, the common
// case for generically imported flat-file data.
func TextSchema(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Kind: KindString}
	}
	return NewSchema(cols...)
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return NewSchema(cols...)
}

// Tuple is one row of a relation.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// ForeignKey records a (possibly discovered) directed reference from
// a column of one relation to a column of another.
type ForeignKey struct {
	FromRelation string
	FromColumn   string
	ToRelation   string
	ToColumn     string
}

// String renders the FK as from.rel(col) -> to.rel(col).
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", fk.FromRelation, fk.FromColumn, fk.ToRelation, fk.ToColumn)
}

// Relation is an in-memory table: a schema plus tuples. Declared
// constraint metadata (primary key, unique, foreign keys) is optional and
// may be absent for generically imported sources — ALADIN's discovery
// steps fill the gap.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple

	// Declared constraints, possibly empty.
	PrimaryKey  string
	UniqueCols  map[string]bool
	ForeignKeys []ForeignKey

	// indexes holds the persistent hash indexes by lower-cased column
	// name (see index.go). Never gob-encoded: snapshots rebuild indexes
	// from restored tuples.
	indexes map[string]*Index

	// Stats is the planner's statistics block (see stats.go), nil until
	// profiling (or BuildStats) computes one. Append maintains it
	// incrementally; Clone deep-copies it.
	Stats *Stats
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema, UniqueCols: make(map[string]bool)}
}

// Append adds a tuple, padding or truncating to the schema arity. Any
// existing hash indexes are maintained incrementally.
func (r *Relation) Append(t Tuple) {
	n := r.Schema.Len()
	if len(t) < n {
		padded := make(Tuple, n)
		copy(padded, t)
		t = padded
	} else if len(t) > n {
		t = t[:n]
	}
	r.Tuples = append(r.Tuples, t)
	r.maintainIndexes(t, len(r.Tuples)-1)
	if r.Stats != nil {
		r.Stats.maintain(r, t)
	}
}

// AppendStrings adds a tuple of parsed text values.
func (r *Relation) AppendStrings(fields ...string) {
	t := make(Tuple, len(fields))
	for i, f := range fields {
		t[i] = Parse(f)
	}
	r.Append(t)
}

// AppendRaw adds a tuple of uninterpreted text values (no type guessing).
func (r *Relation) AppendRaw(fields ...string) {
	t := make(Tuple, len(fields))
	for i, f := range fields {
		if f == "" {
			t[i] = Null()
		} else {
			t[i] = Str(f)
		}
	}
	r.Append(t)
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// ColumnValues returns all values of the named column in tuple order.
func (r *Relation) ColumnValues(name string) ([]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("rel: relation %q has no column %q", r.Name, name)
	}
	vals := make([]Value, len(r.Tuples))
	for j, t := range r.Tuples {
		vals[j] = t[i]
	}
	return vals, nil
}

// DistinctValues returns the set of distinct non-null values of a column,
// as canonical keys mapping to one representative value.
func (r *Relation) DistinctValues(name string) (map[string]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("rel: relation %q has no column %q", r.Name, name)
	}
	set := make(map[string]Value)
	for _, t := range r.Tuples {
		v := t[i]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if _, ok := set[k]; !ok {
			set[k] = v
		}
	}
	return set, nil
}

// IsUnique reports whether the named column contains no duplicate non-null
// value and no NULLs; this is the SQL UNIQUE-with-NOT-NULL check that the
// primary-relation discovery step issues for every attribute (§4.2).
func (r *Relation) IsUnique(name string) (bool, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return false, fmt.Errorf("rel: relation %q has no column %q", r.Name, name)
	}
	seen := make(map[string]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		v := t[i]
		if v.IsNull() {
			return false, nil
		}
		k := v.Key()
		if _, dup := seen[k]; dup {
			return false, nil
		}
		seen[k] = struct{}{}
	}
	return true, nil
}

// LookupPositions returns the positions of the tuples whose named column
// equals v — an O(1) probe of the column's hash index when one exists, a
// full scan otherwise.
func (r *Relation) LookupPositions(name string, v Value) ([]int, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("rel: relation %q has no column %q", r.Name, name)
	}
	if ix := r.indexes[strings.ToLower(name)]; ix != nil {
		return ix.Lookup(v), nil
	}
	var out []int
	for pos, t := range r.Tuples {
		if t[i].Equal(v) {
			out = append(out, pos)
		}
	}
	return out, nil
}

// Lookup returns the tuples whose named column equals v, routed through
// the column's hash index when one exists.
func (r *Relation) Lookup(name string, v Value) ([]Tuple, error) {
	positions, err := r.LookupPositions(name, v)
	if err != nil || len(positions) == 0 {
		return nil, err
	}
	out := make([]Tuple, len(positions))
	for j, pos := range positions {
		out[j] = r.Tuples[pos]
	}
	return out, nil
}

// Clone returns a deep copy of the relation. Hash indexes are not
// copied; callers needing them on the copy call EnsureIndex(es) again.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Schema.Clone())
	c.PrimaryKey = r.PrimaryKey
	for k, v := range r.UniqueCols {
		c.UniqueCols[k] = v
	}
	c.ForeignKeys = append(c.ForeignKeys, r.ForeignKeys...)
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	c.Stats = r.Stats.Clone()
	return c
}

// Database is a named collection of relations — the relational
// representation of one imported data source, or the whole warehouse.
type Database struct {
	Name      string
	relations map[string]*Relation
	order     []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, relations: make(map[string]*Relation)}
}

// Create adds a new empty relation and returns it. It replaces any
// existing relation of the same name.
func (db *Database) Create(name string, schema *Schema) *Relation {
	r := NewRelation(name, schema)
	db.Put(r)
	return r
}

// Put inserts or replaces a relation.
func (db *Database) Put(r *Relation) {
	key := strings.ToLower(r.Name)
	if _, exists := db.relations[key]; !exists {
		db.order = append(db.order, key)
	}
	db.relations[key] = r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation {
	return db.relations[strings.ToLower(name)]
}

// ShallowClone returns a new Database sharing the same *Relation values
// but owning its own name map and order slice. Adding or dropping
// relations on either copy is invisible to the other, while relation
// contents stay shared — the cheap snapshot primitive for readers that
// must stay consistent while new relations are being published, provided
// the shared relations themselves are treated as immutable.
func (db *Database) ShallowClone() *Database {
	c := &Database{
		Name:      db.Name,
		relations: make(map[string]*Relation, len(db.relations)),
		order:     append([]string(nil), db.order...),
	}
	for k, r := range db.relations {
		c.relations[k] = r
	}
	return c
}

// Drop removes the named relation.
func (db *Database) Drop(name string) {
	key := strings.ToLower(name)
	if _, ok := db.relations[key]; !ok {
		return
	}
	delete(db.relations, key)
	for i, k := range db.order {
		if k == key {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
}

// Relations returns all relations in insertion order.
func (db *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.relations[k])
	}
	return out
}

// Names returns the relation names in insertion order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.relations[k].Name)
	}
	return out
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.relations) }

// TotalTuples returns the sum of cardinalities over all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.relations {
		n += len(r.Tuples)
	}
	return n
}

// SortedNames returns relation names sorted alphabetically (for stable
// reporting).
func (db *Database) SortedNames() []string {
	names := db.Names()
	sort.Strings(names)
	return names
}
