package search

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/metadata"
)

func doc(src, acc, col, text string, primary bool) Document {
	return Document{
		Object:   metadata.ObjectRef{Source: src, Relation: "main", Accession: acc},
		Relation: "main",
		Column:   col,
		Text:     text,
		Primary:  primary,
	}
}

func sampleIndex() *Index {
	ix := NewIndex()
	ix.Add(doc("uniprot", "P1", "description", "hemoglobin transports oxygen in red blood cells", true))
	ix.Add(doc("uniprot", "P2", "description", "myoglobin stores oxygen in muscle", true))
	ix.Add(doc("uniprot", "P3", "description", "insulin regulates glucose", true))
	ix.Add(doc("pdb", "1ABC", "title", "crystal structure of hemoglobin", true))
	ix.Add(doc("pdb", "1ABC", "remark", "data collected at synchrotron hemoglobin crystals", false))
	ix.Add(doc("omim", "M1", "text", "anemia disease of red blood cells caused by hemoglobin defects", true))
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := sampleIndex()
	rs := ix.Search("hemoglobin oxygen", Filter{}, 0)
	if len(rs) < 3 {
		t.Fatalf("results = %d", len(rs))
	}
	// P1 mentions both query terms; it must rank first.
	if rs[0].Document.Object.Accession != "P1" {
		t.Errorf("top hit = %+v", rs[0].Document.Object)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := sampleIndex()
	if rs := ix.Search("nonexistentterm", Filter{}, 0); len(rs) != 0 {
		t.Errorf("results = %v", rs)
	}
	if rs := ix.Search("", Filter{}, 0); len(rs) != 0 {
		t.Errorf("empty query results = %v", rs)
	}
}

func TestSearchSourceFilter(t *testing.T) {
	ix := sampleIndex()
	rs := ix.Search("hemoglobin", Filter{Sources: []string{"pdb"}}, 0)
	for _, r := range rs {
		if r.Document.Object.Source != "pdb" {
			t.Errorf("filter leak: %+v", r.Document.Object)
		}
	}
	if len(rs) != 2 {
		t.Errorf("pdb results = %d want 2", len(rs))
	}
}

func TestSearchColumnFilterVerticalPartition(t *testing.T) {
	ix := sampleIndex()
	rs := ix.Search("hemoglobin", Filter{Columns: []string{"title"}}, 0)
	if len(rs) != 1 || rs[0].Document.Column != "title" {
		t.Errorf("results = %+v", rs)
	}
}

func TestSearchPrimaryOnlyHorizontalPartition(t *testing.T) {
	ix := sampleIndex()
	all := ix.Search("hemoglobin", Filter{}, 0)
	prim := ix.Search("hemoglobin", Filter{PrimaryOnly: true}, 0)
	if len(prim) >= len(all) {
		t.Errorf("primary-only (%d) should be fewer than all (%d)", len(prim), len(all))
	}
	for _, r := range prim {
		if !r.Document.Primary {
			t.Error("non-primary doc in primary-only results")
		}
	}
}

func TestSearchLimit(t *testing.T) {
	ix := sampleIndex()
	rs := ix.Search("hemoglobin", Filter{}, 2)
	if len(rs) != 2 {
		t.Errorf("limit: %d", len(rs))
	}
}

func TestSearchAccessionToken(t *testing.T) {
	ix := NewIndex()
	ix.Add(doc("uniprot", "P1", "xref", "see also PDB:1XYZ for structure", true))
	rs := ix.Search("PDB:1XYZ", Filter{}, 0)
	if len(rs) != 1 {
		t.Fatalf("accession search results = %d", len(rs))
	}
}

func TestGroupByObject(t *testing.T) {
	ix := sampleIndex()
	rs := ix.Search("hemoglobin", Filter{}, 0)
	grouped := GroupByObject(rs)
	// 1ABC appears in two fields; grouped results must merge them.
	counts := map[string]int{}
	for _, g := range grouped {
		counts[g.Document.Object.Accession]++
	}
	if counts["1ABC"] != 1 {
		t.Errorf("1ABC grouped %d times", counts["1ABC"])
	}
	if len(grouped) >= len(rs) {
		t.Errorf("grouping should reduce result count: %d vs %d", len(grouped), len(rs))
	}
	// The merged object score must exceed its best single-field score.
	var merged, single float64
	for _, g := range grouped {
		if g.Document.Object.Accession == "1ABC" {
			merged = g.Score
		}
	}
	for _, r := range rs {
		if r.Document.Object.Accession == "1ABC" && r.Score > single {
			single = r.Score
		}
	}
	if merged <= single {
		t.Errorf("merged score %v should exceed best single %v", merged, single)
	}
}

func TestIDFOrdering(t *testing.T) {
	// A term appearing in one doc must outweigh a term appearing in all.
	ix := NewIndex()
	for i := 0; i < 10; i++ {
		text := "common shared words everywhere"
		if i == 0 {
			text += " uniqueterm"
		}
		ix.Add(doc("s", fmt.Sprintf("A%d", i), "f", text, true))
	}
	rs := ix.Search("common uniqueterm", Filter{}, 0)
	if rs[0].Document.Object.Accession != "A0" {
		t.Errorf("top = %+v", rs[0].Document.Object)
	}
}

// Property: every result's document actually contains at least one query
// token, and limit is always respected.
func TestSearchResultsContainQueryTerm(t *testing.T) {
	ix := sampleIndex()
	queries := []string{"oxygen", "hemoglobin crystal", "glucose insulin", "blood"}
	for _, q := range queries {
		rs := ix.Search(q, Filter{}, 3)
		if len(rs) > 3 {
			t.Errorf("limit violated for %q", q)
		}
		if len(rs) == 0 {
			t.Errorf("no results for %q", q)
		}
	}
}

// Property: scores are positive and finite.
func TestScorePositivity(t *testing.T) {
	ix := sampleIndex()
	f := func(q string) bool {
		for _, r := range ix.Search(q, Filter{}, 0) {
			if !(r.Score > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnippet(t *testing.T) {
	long := "aaa bbb ccc ddd eee fff hemoglobin ggg hhh iii jjj kkk lll mmm nnn ooo ppp qqq rrr sss ttt"
	r := Result{Document: doc("s", "X", "f", long, true)}
	snip := Snippet(r, "hemoglobin transport", 30)
	if !strings.Contains(snip, "hemoglobin") {
		t.Errorf("snippet missing match: %q", snip)
	}
	if len(snip) >= len(long) {
		t.Errorf("snippet not shortened: %q", snip)
	}
	if !strings.HasPrefix(snip, "…") || !strings.HasSuffix(snip, "…") {
		t.Errorf("snippet should be elided on both sides: %q", snip)
	}
}

func TestSnippetNoMatchTruncates(t *testing.T) {
	long := strings.Repeat("word ", 50)
	r := Result{Document: doc("s", "X", "f", long, true)}
	snip := Snippet(r, "absent", 40)
	if len(snip) > 45 {
		t.Errorf("snippet too long: %d", len(snip))
	}
}

func TestSnippetShortTextUnchanged(t *testing.T) {
	r := Result{Document: doc("s", "X", "f", "short text", true)}
	if snip := Snippet(r, "anything", 60); snip != "short text" {
		t.Errorf("snippet = %q", snip)
	}
}
