// Package search implements ALADIN's search access mode (§4.6): "a
// full-text search on all stored data and a focused search restricted to
// certain vertical (e.g., a single attribute-type) and horizontal
// partitions (e.g., only on primary objects) of the data. Ranking
// algorithms order the search results based on similarity of the result
// to the query." The paper delegates this to commercial extenders; here
// it is an inverted index with BM25 ranking built from scratch.
package search

import (
	"math"
	"sort"
	"strings"

	"repro/internal/metadata"
	"repro/internal/textmine"
)

// Document is one indexed unit: a field value belonging to an object.
type Document struct {
	Object   metadata.ObjectRef
	Relation string
	Column   string
	Text     string
	// Primary marks values from a primary relation (for horizontal
	// partition filtering).
	Primary bool
}

// Result is one ranked search hit.
type Result struct {
	Document Document
	Score    float64
}

// Filter restricts a search to data partitions.
type Filter struct {
	// Sources restricts to the named sources (empty = all).
	Sources []string
	// Columns restricts to the named columns, the vertical partition
	// (empty = all).
	Columns []string
	// PrimaryOnly restricts to primary-relation values, the horizontal
	// partition.
	PrimaryOnly bool
}

func (f Filter) match(d Document) bool {
	if f.PrimaryOnly && !d.Primary {
		return false
	}
	if len(f.Sources) > 0 && !containsFold(f.Sources, d.Object.Source) {
		return false
	}
	if len(f.Columns) > 0 && !containsFold(f.Columns, d.Column) {
		return false
	}
	return true
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

type posting struct {
	doc int
	tf  int
}

// Index is a BM25-ranked inverted index.
type Index struct {
	docs     []Document
	lens     []int
	postings map[string][]posting
	totalLen int
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// Add indexes one document.
func (ix *Index) Add(d Document) {
	id := len(ix.docs)
	ix.docs = append(ix.docs, d)
	toks := textmine.Tokenize(d.Text)
	// Accession-shaped raw tokens are additionally indexed verbatim
	// (lower-cased) so searches for "P12345" hit even though the
	// tokenizer would split nothing here; composite IDs split on ':' etc.
	for _, w := range strings.Fields(d.Text) {
		w = strings.Trim(w, ".,;:()[]{}\"'")
		if textmine.LooksLikeAccession(w) {
			toks = append(toks, strings.ToLower(w))
		}
	}
	tf := textmine.TermFreq(toks)
	ix.lens = append(ix.lens, len(toks))
	ix.totalLen += len(toks)
	for term, f := range tf {
		ix.postings[term] = append(ix.postings[term], posting{doc: id, tf: f})
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Merge folds another index's documents into ix, remapping document ids.
// It lets callers tokenize and index a batch off to the side (outside any
// lock protecting ix) and then splice it in cheaply: the merge is a
// slice-append per term, with no re-tokenization. Ranking after a merge
// is identical to having Added the documents directly in order.
func (ix *Index) Merge(other *Index) {
	if other == nil || len(other.docs) == 0 {
		return
	}
	base := len(ix.docs)
	ix.docs = append(ix.docs, other.docs...)
	ix.lens = append(ix.lens, other.lens...)
	ix.totalLen += other.totalLen
	for term, posts := range other.postings {
		dst := ix.postings[term]
		for _, p := range posts {
			dst = append(dst, posting{doc: p.doc + base, tf: p.tf})
		}
		ix.postings[term] = dst
	}
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Search returns documents matching the query ranked by BM25, after
// applying the filter. limit <= 0 returns everything.
func (ix *Index) Search(query string, f Filter, limit int) []Result {
	if len(ix.docs) == 0 {
		return nil
	}
	qTokens := textmine.Tokenize(query)
	for _, w := range strings.Fields(query) {
		if textmine.LooksLikeAccession(w) {
			qTokens = append(qTokens, strings.ToLower(w))
		}
	}
	if len(qTokens) == 0 {
		return nil
	}
	avgLen := float64(ix.totalLen) / float64(len(ix.docs))
	if avgLen == 0 {
		avgLen = 1
	}
	scores := make(map[int]float64)
	n := float64(len(ix.docs))
	seenTerm := make(map[string]bool)
	for _, term := range qTokens {
		if seenTerm[term] {
			continue
		}
		seenTerm[term] = true
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		df := float64(len(posts))
		idf := math.Log((n-df+0.5)/(df+0.5) + 1)
		for _, p := range posts {
			dl := float64(ix.lens[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
	}
	results := make([]Result, 0, len(scores))
	for doc, s := range scores {
		d := ix.docs[doc]
		if !f.match(d) {
			continue
		}
		results = append(results, Result{Document: d, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Document.Object.Key() < results[j].Document.Object.Key()
	})
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}

// Snippet extracts a short context window around the first query-term
// occurrence in a result's text, for display in result lists. width is
// the approximate number of characters around the match (default 60).
func Snippet(r Result, query string, width int) string {
	if width <= 0 {
		width = 60
	}
	text := r.Document.Text
	lower := strings.ToLower(text)
	pos := -1
	matchLen := 0
	for _, term := range textmine.Tokenize(query) {
		if i := strings.Index(lower, term); i >= 0 && (pos < 0 || i < pos) {
			pos = i
			matchLen = len(term)
		}
	}
	if pos < 0 {
		if len(text) <= width {
			return text
		}
		return text[:width] + "…"
	}
	start := pos - width/2
	if start < 0 {
		start = 0
	}
	end := pos + matchLen + width/2
	if end > len(text) {
		end = len(text)
	}
	// Align to word boundaries.
	for start > 0 && text[start] != ' ' {
		start--
	}
	for end < len(text) && text[end] != ' ' {
		end++
	}
	out := strings.TrimSpace(text[start:end])
	if start > 0 {
		out = "…" + out
	}
	if end < len(text) {
		out += "…"
	}
	return out
}

// GroupByObject merges per-field results into per-object results,
// summing scores — the object-level view users browse from.
func GroupByObject(results []Result) []Result {
	byObj := make(map[string]*Result)
	var order []string
	for _, r := range results {
		k := r.Document.Object.Key()
		if cur, ok := byObj[k]; ok {
			cur.Score += r.Score
			continue
		}
		cp := r
		byObj[k] = &cp
		order = append(order, k)
	}
	out := make([]Result, 0, len(byObj))
	for _, k := range order {
		out = append(out, *byObj[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Document.Object.Key() < out[j].Document.Object.Key()
	})
	return out
}
