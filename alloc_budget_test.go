// Allocation-budget regression gate for the vectorized executor's
// zero-allocation hash paths. The batch engine cut hash-join, DISTINCT,
// and GROUP BY from tens of thousands of allocs/op (string keys +
// map[string][]Tuple) to roughly a hundred; ALLOC_budget.json pins
// ceilings with headroom so a regression back toward per-row
// allocation fails CI instead of silently landing.
package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/rel"
)

// TestQueryAllocBudget measures allocs/op for the hash-join, DISTINCT,
// and GROUP BY benchmarks (workers=1, so the numbers are deterministic
// modulo GC noise) and fails if any exceeds its checked-in budget.
func TestQueryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	if testing.Short() {
		t.Skip("skipping alloc benchmarks in -short mode")
	}
	raw, err := os.ReadFile("ALLOC_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget struct {
		HashJoin int64 `json:"hash_join"`
		Distinct int64 `json:"distinct"`
		GroupBy  int64 `json:"group_by"`
	}
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatal(err)
	}

	var db *rel.Database
	testing.Benchmark(func(b *testing.B) { db = bigQueryDB(b) })
	joinWant := countFact(func(i int) bool { return i%64 < 32 })

	check := func(name, q string, wantRows int, max int64) {
		if max <= 0 {
			t.Fatalf("%s: missing budget in ALLOC_budget.json", name)
		}
		r := testing.Benchmark(func(b *testing.B) { benchParallelQuery(b, db, q, 1, wantRows) })
		t.Logf("%s: %d allocs/op (budget %d)", name, r.AllocsPerOp(), max)
		if r.AllocsPerOp() > max {
			t.Errorf("%s: %d allocs/op exceeds budget %d — the zero-allocation hash path regressed",
				name, r.AllocsPerOp(), max)
		}
	}
	check("hash-join", parallelJoinQuery, joinWant, budget.HashJoin)
	check("distinct", distinctQuery, 7*64, budget.Distinct)
	check("group-by", groupByQuery, 7, budget.GroupBy)
}
