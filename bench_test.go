// Package repro's root bench suite regenerates every table and figure of
// the paper's evaluation programme as testing.B benchmarks (DESIGN.md §3
// maps each bench to its experiment id and paper item). Run with:
//
//	go test -bench=. -benchmem
//
// Quality metrics (precision/recall, counts) are reported via b.ReportMetric
// so `go test -bench` output doubles as the experiment record.
package repro

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/aladin"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/seq"
	"repro/internal/sqlx"
)

// benchCorpus caches one standard corpus per size across benchmarks.
var corpusCache = map[int]*datagen.Corpus{}

func benchCorpus(n int) *datagen.Corpus {
	if c, ok := corpusCache[n]; ok {
		return c
	}
	c := datagen.Generate(datagen.Config{Seed: 99, Proteins: n})
	corpusCache[n] = c
	return c
}

// integrate builds a system over a fresh copy of the corpus sources.
func integrate(b *testing.B, n int, opts core.Options) *core.System {
	b.Helper()
	corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: n})
	sys := core.New(opts)
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			b.Fatalf("integrating %s: %v", src.Name, err)
		}
	}
	return sys
}

// BenchmarkTable1IntegrationCost (E1, Table 1): the cost of integrating
// the full corpus under ALADIN — the machine-time side of the table whose
// manual-action side is printed by cmd/experiments e1.
func BenchmarkTable1IntegrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := integrate(b, 40, core.Options{OntologySources: []string{"go"}, DisableSearchIndex: true})
		if len(sys.Sources()) != 6 {
			b.Fatal("integration incomplete")
		}
	}
	b.ReportMetric(0, "manual-actions/source")
}

// BenchmarkFigure2Pipeline (E2, Figures 1+2): one full five-step pipeline
// run per iteration, reporting per-step shares via sub-benchmarks, for
// the serial pipeline (workers=1) and the parallel one (workers=GOMAXPROCS).
func BenchmarkFigure2Pipeline(b *testing.B) {
	steps := []string{"profile", "discover-structure", "link-discovery", "duplicate-detection", "register-and-index"}
	type pipelineMode struct {
		name    string
		workers int
	}
	modes := []pipelineMode{{"serial", 1}}
	// On a single-CPU host the parallel variant is the serial one; skip
	// the duplicate run.
	if n := runtime.GOMAXPROCS(0); n > 1 {
		modes = append(modes, pipelineMode{fmt.Sprintf("parallel-%d", n), n})
	}
	for _, mode := range modes {
		for _, step := range steps {
			b.Run(mode.name+"/"+step, func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: 40})
					sys := core.New(core.Options{OntologySources: []string{"go"}, Workers: mode.workers})
					for _, src := range corpus.Sources {
						rep, err := sys.AddSource(src)
						if err != nil {
							b.Fatal(err)
						}
						for _, t := range rep.Timings {
							if t.Step == step {
								total += float64(t.Duration.Nanoseconds())
							}
						}
					}
				}
				b.ReportMetric(total/float64(b.N), "step-ns/corpus")
			})
		}
	}
}

// BenchmarkFigure3BioSQL (E3, Figure 3/§5): the BioSQL case-study
// discovery walk.
func BenchmarkFigure3BioSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E3BioSQL()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(strings.Join(tbl.Notes, " "), `"bioentry"`) {
			b.Fatal("BioSQL case study did not select bioentry")
		}
	}
}

// BenchmarkPrimaryRelationPR (E4): primary-relation discovery over the
// corpus, reporting accuracy.
func BenchmarkPrimaryRelationPR(b *testing.B) {
	corpus := benchCorpus(40)
	correct := 0
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correct, total = 0, 0
		for _, src := range corpus.Sources {
			profs, err := profile.ProfileDatabase(src, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			total++
			if strings.EqualFold(st.Primary, corpus.Gold.Primary[strings.ToLower(src.Name)]) {
				correct++
			}
		}
	}
	b.ReportMetric(float64(correct)/float64(total), "primary-accuracy")
}

// BenchmarkForeignKeyPR (E5): FK discovery accuracy across the corpus.
func BenchmarkForeignKeyPR(b *testing.B) {
	corpus := benchCorpus(40)
	var pr eval.PR
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr = eval.PR{}
		for _, src := range corpus.Sources {
			gold := corpus.Gold.ForeignKeys[strings.ToLower(src.Name)]
			if len(gold) == 0 {
				continue
			}
			profs, err := profile.ProfileDatabase(src, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			preds := make([]rel.ForeignKey, 0, len(st.ForeignKeys))
			for _, d := range st.ForeignKeys {
				preds = append(preds, d.From)
			}
			pr.Add(eval.CompareFKs(preds, gold))
		}
	}
	b.ReportMetric(pr.Precision(), "precision")
	b.ReportMetric(pr.Recall(), "recall")
}

// BenchmarkCrossRefPR (E6): explicit cross-reference discovery quality.
func BenchmarkCrossRefPR(b *testing.B) {
	var pr eval.PR
	for i := 0; i < b.N; i++ {
		corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: 40})
		sys := core.New(core.Options{OntologySources: []string{"go"}, DisableSearchIndex: true})
		for _, src := range corpus.Sources {
			if _, err := sys.AddSource(src); err != nil {
				b.Fatal(err)
			}
		}
		gold := append([]datagen.GoldLink{}, corpus.Gold.XRefs...)
		gold = append(gold, corpus.Gold.TermXRefs...)
		pr = eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkXRef, gold)
	}
	b.ReportMetric(pr.Precision(), "precision")
	b.ReportMetric(pr.Recall(), "recall")
}

// BenchmarkSequenceLinkPR (E7): homology link discovery at 5% mutation.
func BenchmarkSequenceLinkPR(b *testing.B) {
	var pr eval.PR
	for i := 0; i < b.N; i++ {
		corpus := datagen.Generate(datagen.Config{
			Seed: 99, Proteins: 30, Noise: datagen.Noise{SeqMutation: 0.05},
		})
		sys := core.New(core.Options{DisableSearchIndex: true})
		for _, name := range []string{"swissprot", "pdb", "genbank"} {
			if _, err := sys.AddSource(corpus.Source(name)); err != nil {
				b.Fatal(err)
			}
		}
		pr = eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkSequence, corpus.Gold.Homologs)
	}
	b.ReportMetric(pr.Precision(), "precision")
	b.ReportMetric(pr.Recall(), "recall")
}

// BenchmarkSeededVsFullAlignment (E7 ablation): BLAST-style k-mer seeding
// against the quadratic all-pairs Smith-Waterman baseline.
func BenchmarkSeededVsFullAlignment(b *testing.B) {
	corpus := benchCorpus(40)
	sp := corpus.Source("swissprot").Relation("sequence")
	si := sp.Schema.Index("seq")
	pdb := corpus.Source("pdb").Relation("chain")
	ci := pdb.Schema.Index("chain_seq")
	var queries, targets []seq.Record
	for i, t := range sp.Tuples {
		targets = append(targets, seq.Record{ID: fmt.Sprintf("t%d", i), Seq: t[si].AsString()})
	}
	for i, t := range pdb.Tuples {
		queries = append(queries, seq.Record{ID: fmt.Sprintf("q%d", i), Seq: t[ci].AsString()})
	}
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := seq.NewIndex(8)
			for _, t := range targets {
				ix.Add(t.ID, t.Seq)
			}
			for _, q := range queries {
				ix.Search(q.Seq, seq.SearchOptions{MinScore: 40, MinIdentity: 0.7})
			}
		}
	})
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.AllPairs(queries, targets, seq.SearchOptions{MinScore: 40, MinIdentity: 0.7})
		}
	})
}

// BenchmarkTextLinkPR (E8): entity-mention link quality.
func BenchmarkTextLinkPR(b *testing.B) {
	var tbl experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.E8TextPR(40)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
}

// BenchmarkDuplicatePR (E9): duplicate detection quality at the default
// threshold over the Swiss-Prot/PIR overlap.
func BenchmarkDuplicatePR(b *testing.B) {
	corpus := benchCorpus(40)
	var records []dup.Record
	for _, name := range []string{"swissprot", "pir"} {
		src := corpus.Source(name)
		profs, err := profile.ProfileDatabase(src, profile.Options{})
		if err != nil {
			b.Fatal(err)
		}
		st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		records = append(records, dup.RecordsFromSource(src, st)...)
	}
	goldSet := eval.GoldLinkSet(corpus.Gold.Duplicates)
	var pr eval.PR
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches, _ := dup.FindDuplicates(records, dup.Options{})
		links := dup.Links(matches)
		pr = eval.CompareSets(eval.PredictedLinkSet(links, metadata.LinkDuplicate), goldSet)
	}
	b.ReportMetric(pr.Precision(), "precision")
	b.ReportMetric(pr.Recall(), "recall")
}

// BenchmarkBlockingAblation (E9/E10 ablation): sorted-neighbourhood
// blocking vs full pairwise comparison.
func BenchmarkBlockingAblation(b *testing.B) {
	corpus := benchCorpus(100)
	var records []dup.Record
	for _, name := range []string{"swissprot", "pir", "pdb"} {
		src := corpus.Source(name)
		profs, _ := profile.ProfileDatabase(src, profile.Options{})
		st, _ := discovery.Analyze(src, profs, discovery.DefaultOptions())
		records = append(records, dup.RecordsFromSource(src, st)...)
	}
	b.Run("sorted-neighborhood", func(b *testing.B) {
		var comparisons int
		for i := 0; i < b.N; i++ {
			_, stats := dup.FindDuplicates(records, dup.Options{Blocking: dup.SortedNeighborhood})
			comparisons = stats.Comparisons
		}
		b.ReportMetric(float64(comparisons), "comparisons")
	})
	b.Run("full-pairwise", func(b *testing.B) {
		var comparisons int
		for i := 0; i < b.N; i++ {
			_, stats := dup.FindDuplicates(records, dup.Options{Blocking: dup.FullPairwise})
			comparisons = stats.Comparisons
		}
		b.ReportMetric(float64(comparisons), "comparisons")
	})
}

// BenchmarkAddSourceScaling (E10): cost of adding one more source at
// increasing corpus sizes, serial (workers-1) vs parallel
// (workers-GOMAXPROCS). Both variants discover identical links and
// duplicates (asserted by TestParallelSerialParity in smoke_test.go).
func BenchmarkAddSourceScaling(b *testing.B) {
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, n := range []int{50, 100, 200} {
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("proteins-%d/workers-%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: n})
					sys := core.New(core.Options{DisableSearchIndex: true, Workers: workers})
					if _, err := sys.AddSource(corpus.Source("pdb")); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := sys.AddSource(corpus.Source("swissprot")); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPruningAblation (E10): attribute-pair pruning on and off.
func BenchmarkPruningAblation(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts linkdisc.Options
	}{
		{"pruned", linkdisc.Options{}},
		{"unpruned", linkdisc.Options{DisablePruning: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var checked int
			for i := 0; i < b.N; i++ {
				corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: 100})
				sys := core.New(core.Options{Links: variant.opts, DisableSearchIndex: true})
				if _, err := sys.AddSource(corpus.Source("pdb")); err != nil {
					b.Fatal(err)
				}
				rep, err := sys.AddSource(corpus.Source("swissprot"))
				if err != nil {
					b.Fatal(err)
				}
				checked = rep.LinkStats.AttributePairsChecked
			}
			b.ReportMetric(float64(checked), "xref-pairs-checked")
		})
	}
}

// BenchmarkAccessionRuleAblation (DESIGN.md §4): primary-relation accuracy
// with individual accession rules disabled.
func BenchmarkAccessionRuleAblation(b *testing.B) {
	corpus := benchCorpus(40)
	variants := []struct {
		name  string
		rules discovery.AccessionRules
	}{
		{"all-rules", discovery.DefaultAccessionRules()},
		{"no-nondigit", func() discovery.AccessionRules {
			r := discovery.DefaultAccessionRules()
			r.RequireNonDigit = false
			return r
		}()},
		{"no-minlength", func() discovery.AccessionRules {
			r := discovery.DefaultAccessionRules()
			r.MinLength = 0
			return r
		}()},
		{"no-spread", func() discovery.AccessionRules {
			r := discovery.DefaultAccessionRules()
			r.MaxLenSpread = 0
			return r
		}()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			correct, total := 0, 0
			for i := 0; i < b.N; i++ {
				correct, total = 0, 0
				opts := discovery.DefaultOptions()
				opts.Accession = v.rules
				for _, src := range corpus.Sources {
					profs, err := profile.ProfileDatabase(src, profile.Options{})
					if err != nil {
						b.Fatal(err)
					}
					st, err := discovery.Analyze(src, profs, opts)
					if err != nil {
						b.Fatal(err)
					}
					total++
					name := strings.ToLower(src.Name)
					if strings.EqualFold(st.Primary, corpus.Gold.Primary[name]) &&
						strings.EqualFold(st.PrimaryAccession, corpus.Gold.Accession[name]) {
						correct++
					}
				}
			}
			b.ReportMetric(float64(correct)/float64(total), "primary+accession-accuracy")
		})
	}
}

// BenchmarkChangeThreshold (E11): re-analysis cost after threshold churn.
func BenchmarkChangeThreshold(b *testing.B) {
	corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: 40})
	sys := core.New(core.Options{DisableSearchIndex: true})
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Reanalyze("swissprot"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearch (E12): ranked full-text search latency.
func BenchmarkSearch(b *testing.B) {
	sys := integrateOnce(b)
	queries := []string{"hemoglobin oxygen", "catalase peroxide", "insulin glucose", "keratin filament"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := sys.Search(queries[i%len(queries)], search.Filter{}, 10)
		if len(rs) == 0 {
			b.Fatal("no results")
		}
	}
}

var benchSys *core.System

func integrateOnce(b *testing.B) *core.System {
	b.Helper()
	if benchSys == nil {
		benchSys = integrate(b, 40, core.Options{OntologySources: []string{"go"}})
	}
	return benchSys
}

// BenchmarkBrowseRanking (E12): [BLM+04] path-based related-object
// ranking.
func BenchmarkBrowseRanking(b *testing.B) {
	sys := integrateOnce(b)
	start := metadata.ObjectRef{Source: "swissprot", Relation: "protein", Accession: "P10000"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if related := sys.Related(start, 2, 5); len(related) == 0 {
			b.Fatal("no related objects")
		}
	}
}

// BenchmarkSQLJoin: the warehouse SQL engine on a cross-source join.
func BenchmarkSQLJoin(b *testing.B) {
	sys := integrateOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query(`
			SELECT p.accession, s.pdb_code
			FROM swissprot_protein p
			JOIN pdb_structure s ON s.structure_id = p.protein_id`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty join")
		}
	}
}

// queryBenchDB caches one public-API database over the 200-protein
// corpus for the streaming-vs-materializing query benchmarks.
var queryBenchDB *aladin.DB

func queryDB(b *testing.B) *aladin.DB {
	b.Helper()
	if queryBenchDB == nil {
		corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: 200})
		db, err := aladin.Open(aladin.WithoutSearchIndex(), aladin.WithPlanCache(16))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for _, name := range []string{"swissprot", "pdb"} {
			if _, err := db.AddSource(ctx, corpus.Source(name)); err != nil {
				b.Fatal(err)
			}
		}
		queryBenchDB = db
	}
	return queryBenchDB
}

// BenchmarkQueryStream: a LIMIT 10 query through the streaming cursor —
// the executor stops after pulling only the tuples the 10 rows need
// (reported as scanned-tuples/op).
func BenchmarkQueryStream(b *testing.B) {
	db := queryDB(b)
	ctx := context.Background()
	var scanned int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.QueryRows(ctx, `SELECT accession, organism FROM swissprot_protein LIMIT 10`)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		scanned = rows.Scanned()
		rows.Close()
		if n != 10 {
			b.Fatalf("got %d rows", n)
		}
	}
	b.ReportMetric(float64(scanned), "scanned-tuples/op")
}

// BenchmarkQueryMaterialize: the same 10 rows obtained the way the
// pre-streaming API had to — materialize the full result, keep the
// first 10. The gap versus BenchmarkQueryStream is the early-termination
// win, and it grows linearly with corpus size.
func BenchmarkQueryMaterialize(b *testing.B) {
	db := queryDB(b)
	ctx := context.Background()
	b.ResetTimer()
	var materialized int
	for i := 0; i < b.N; i++ {
		res, err := db.Query(ctx, `SELECT accession, organism FROM swissprot_protein`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) < 10 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
		_ = res.Rows[:10]
		materialized = len(res.Rows)
	}
	b.ReportMetric(float64(materialized), "scanned-tuples/op")
}

// Indexed-vs-scan benchmark fixtures: one integrated 200-protein
// warehouse snapshot (with the persistent hash indexes built by the
// pipeline) and a deep copy stripped of every index (Relation.Clone
// drops them) — the scan baseline for the same data and queries.
var (
	warehouse200        *rel.Database
	warehouse200NoIndex *rel.Database
)

func indexedAndScanWarehouses(b *testing.B) (*rel.Database, *rel.Database) {
	b.Helper()
	if warehouse200 == nil {
		sys := integrate(b, 200, core.Options{DisableSearchIndex: true})
		warehouse200 = sys.WarehouseSnapshot()
		stripped := rel.NewDatabase(warehouse200.Name)
		for _, r := range warehouse200.Relations() {
			stripped.Put(r.Clone())
		}
		warehouse200NoIndex = stripped
	}
	return warehouse200, warehouse200NoIndex
}

// benchCursorQuery opens and drains one prepared plan per iteration,
// reporting the stored tuples the execution read.
func benchCursorQuery(b *testing.B, db *rel.Database, q string, wantRows int) {
	b.Helper()
	ctx := context.Background()
	plan, err := sqlx.Prepare(db, q)
	if err != nil {
		b.Fatal(err)
	}
	var scanned int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := plan.Open(ctx, db)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, err := cur.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows++
		}
		if rows != wantRows {
			b.Fatalf("got %d rows, want %d", rows, wantRows)
		}
		scanned = cur.Scanned()
	}
	b.ReportMetric(float64(scanned), "scanned-tuples/op")
}

// BenchmarkPointQuery: a primary-object equality lookup over the
// 200-protein corpus — the index access path probes one tuple where the
// scan baseline reads the whole relation.
func BenchmarkPointQuery(b *testing.B) {
	indexed, scan := indexedAndScanWarehouses(b)
	q := `SELECT entry_name, organism FROM swissprot_protein WHERE accession = 'P10042'`
	b.Run("index", func(b *testing.B) { benchCursorQuery(b, indexed, q, 1) })
	b.Run("scan", func(b *testing.B) { benchCursorQuery(b, scan, q, 1) })
}

// BenchmarkIndexedJoin: an FK join probe (swissprot protein to its PDB
// structure) — the index path touches tuples proportional to the result,
// the scan baseline reads both relations.
func BenchmarkIndexedJoin(b *testing.B) {
	indexed, scan := indexedAndScanWarehouses(b)
	q := `SELECT p.accession, s.pdb_code
	      FROM swissprot_protein p
	      JOIN pdb_structure s ON s.structure_id = p.protein_id
	      WHERE p.accession = 'P10042'`
	b.Run("index", func(b *testing.B) { benchCursorQuery(b, indexed, q, 1) })
	b.Run("scan", func(b *testing.B) { benchCursorQuery(b, scan, q, 1) })
}

// BenchmarkSmithWaterman: the core alignment kernel.
func BenchmarkSmithWaterman(b *testing.B) {
	corpus := benchCorpus(40)
	sp := corpus.Source("swissprot").Relation("sequence")
	si := sp.Schema.Index("seq")
	a := sp.Tuples[0][si].AsString()
	c := sp.Tuples[1][si].AsString()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.SmithWaterman(a, c, seq.DefaultScoring())
	}
}

// BenchmarkSQLParse: statement parsing throughput.
func BenchmarkSQLParse(b *testing.B) {
	q := `SELECT p.accession, COUNT(*) AS n FROM protein p JOIN dbref d ON d.protein_id = p.protein_id WHERE p.organism = 'Homo sapiens' GROUP BY p.accession HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
