// Replication benchmarks (PR 8): replica bootstrap time as a function
// of corpus size, steady-state streaming lag drain, and read throughput
// of a primary alone versus primary + read replicas — the point of the
// subsystem is that reads/sec scales with replicas while writes stay on
// one primary.
//
// Run with:
//
//	go test -bench Replication -benchtime 1x .
//
// Set BENCH_JSON=1 to (re)generate BENCH_replication.json, the tracked
// perf record (TestWriteReplicationBenchJSON). Note that the tracked
// numbers come from CI's single-CPU container: the multi-replica read
// rows measure HTTP + scheduler coordination overhead there, not true
// parallel speedup — compare against the replicas=1 row, not across
// machines.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
)

// replPrimary builds a durable primary over the synthetic corpus and
// serves its replication API.
func replPrimary(tb testing.TB, proteins int) (*aladin.DB, *httptest.Server) {
	tb.Helper()
	db, err := aladin.Open(aladin.WithOntologySources("go"), aladin.WithDataDir(tb.TempDir()))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	corpus := datagen.Generate(datagen.Config{Seed: 7, Proteins: proteins})
	for _, src := range corpus.Sources {
		if _, err := db.AddSource(context.Background(), src); err != nil {
			tb.Fatal(err)
		}
	}
	ts := httptest.NewServer(db.ReplHandler())
	tb.Cleanup(ts.Close)
	return db, ts
}

func openReplica(tb testing.TB, primaryURL string) *aladin.DB {
	tb.Helper()
	r, err := aladin.Open(aladin.WithOntologySources("go"),
		aladin.WithDataDir(tb.TempDir()), aladin.WithReplicaOf(primaryURL))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkReplicationBootstrap measures cold bootstrap + catch-up:
// aladin.Open with WithReplicaOf against an idle primary, by corpus
// size.
func BenchmarkReplicationBootstrap(b *testing.B) {
	for _, proteins := range []int{8, 24, 48} {
		b.Run(fmt.Sprintf("proteins=%d", proteins), func(b *testing.B) {
			_, ts := replPrimary(b, proteins)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := openReplica(b, ts.URL)
				b.StopTimer()
				if st, _ := r.Stats(context.Background()); st.Repo.Sources == 0 {
					b.Fatal("replica bootstrapped empty")
				}
				r.Close()
				b.StartTimer()
			}
		})
	}
}

// replCatchup measures steady-state streaming: n journaled DML
// mutations on the primary, timed until the replica has applied the
// last of them.
func replCatchup(tb testing.TB, primary, replica *aladin.DB, n int) time.Duration {
	tb.Helper()
	ctx := context.Background()
	res, err := primary.Query(ctx, fmt.Sprintf("SELECT accession FROM swissprot_protein ORDER BY accession LIMIT %d", n))
	if err != nil || len(res.Rows) < n {
		tb.Fatalf("accession fetch: err=%v rows=%d want %d", err, len(res.Rows), n)
	}
	t0 := time.Now()
	for _, row := range res.Rows {
		if _, err := primary.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", row[0].AsString())); err != nil {
			tb.Fatal(err)
		}
	}
	want, _ := primary.SnapshotID(ctx)
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := replica.SnapshotID(ctx)
		if err != nil {
			tb.Fatal(err)
		}
		if got.Seq >= want.Seq {
			return time.Since(t0)
		}
		if time.Now().After(deadline) {
			st, _ := replica.Stats(ctx)
			tb.Fatalf("replica stuck at %v, want %v (%+v)", got, want, st.Replication)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func BenchmarkReplicationCatchup(b *testing.B) {
	primary, ts := replPrimary(b, 48)
	replica := openReplica(b, ts.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replCatchup(b, primary, replica, 8)
	}
}

// replReadThroughput drives concurrent point queries round-robin over
// the target servers for the window and returns completed reads/sec.
func replReadThroughput(tb testing.TB, targets []*httptest.Server, window time.Duration, workers int) float64 {
	tb.Helper()
	path := "/v1/query?q=" + url.QueryEscape("SELECT COUNT(*) FROM swissprot_protein") + "&limit=1"
	var done, failed, next atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for time.Now().Before(deadline) {
				ts := targets[int(next.Add(1))%len(targets)]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() > 0 {
		tb.Fatalf("%d of %d load requests failed", failed.Load(), failed.Load()+done.Load())
	}
	return float64(done.Load()) / window.Seconds()
}

// replCluster serves the full read API of a primary plus `replicas`
// caught-up read replicas; returns the query servers in cluster order.
func replCluster(tb testing.TB, proteins, replicas int) (*aladin.DB, []*httptest.Server) {
	tb.Helper()
	primary, replTS := replPrimary(tb, proteins)
	// The primary's read API rides the replication mux's sibling server.
	mux := func(db *aladin.DB) *httptest.Server {
		h := http.NewServeMux()
		h.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
			q := r.URL.Query().Get("q")
			res, err := db.Query(r.Context(), q)
			if err != nil {
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintln(w, err)
				return
			}
			json.NewEncoder(w).Encode(map[string]any{"count": len(res.Rows)})
		})
		ts := httptest.NewServer(h)
		tb.Cleanup(ts.Close)
		return ts
	}
	servers := []*httptest.Server{mux(primary)}
	for i := 0; i < replicas; i++ {
		servers = append(servers, mux(openReplica(tb, replTS.URL)))
	}
	return primary, servers
}

func BenchmarkReplicationReadFanout(b *testing.B) {
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			_, servers := replCluster(b, 24, replicas)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rps := replReadThroughput(b, servers, 250*time.Millisecond, 4)
				b.ReportMetric(rps, "reads/s")
			}
		})
	}
}

// TestWriteReplicationBenchJSON regenerates BENCH_replication.json, the
// tracked replication perf record (set BENCH_JSON=1; CI runs it).
func TestWriteReplicationBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_replication.json")
	}
	type entry struct {
		Name          string  `json:"name"`
		Proteins      int     `json:"proteins,omitempty"`
		Records       int     `json:"records,omitempty"`
		Replicas      int     `json:"replicas,omitempty"`
		Servers       int     `json:"servers,omitempty"`
		MsTotal       float64 `json:"ms_total,omitempty"`
		RecordsPerSec float64 `json:"records_per_sec,omitempty"`
		ReadsPerSec   float64 `json:"reads_per_sec,omitempty"`
	}
	out := struct {
		Benchmark string  `json:"benchmark"`
		Go        string  `json:"go"`
		CPUs      int     `json:"cpus"`
		Note      string  `json:"note"`
		Entries   []entry `json:"entries"`
	}{
		Benchmark: "replication", Go: runtime.Version(), CPUs: runtime.NumCPU(),
		Note: "single-CPU CI container: multi-replica read rows measure HTTP/scheduler " +
			"coordination overhead, not parallel speedup; compare within this file only",
	}

	// Bootstrap time vs corpus size.
	for _, proteins := range []int{8, 24, 48} {
		_, ts := replPrimary(t, proteins)
		t0 := time.Now()
		r := openReplica(t, ts.URL)
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		if st, _ := r.Stats(context.Background()); st.Repo.Sources == 0 {
			t.Fatal("replica bootstrapped empty")
		}
		r.Close()
		out.Entries = append(out.Entries, entry{
			Name: fmt.Sprintf("bootstrap/proteins=%d", proteins), Proteins: proteins, MsTotal: ms,
		})
		t.Logf("bootstrap proteins=%d: %.1fms", proteins, ms)
	}

	// Steady-state stream drain: n mutations, time to lag 0.
	{
		primary, ts := replPrimary(t, 48)
		replica := openReplica(t, ts.URL)
		const n = 16
		d := replCatchup(t, primary, replica, n)
		out.Entries = append(out.Entries, entry{
			Name: fmt.Sprintf("catchup/records=%d", n), Records: n,
			MsTotal:       float64(d) / float64(time.Millisecond),
			RecordsPerSec: float64(n) / d.Seconds(),
		})
		t.Logf("catchup %d records: %v", n, d)
	}

	// Read fan-out: primary alone, then primary + 1 and + 2 replicas.
	for _, replicas := range []int{0, 1, 2} {
		_, servers := replCluster(t, 24, replicas)
		rps := replReadThroughput(t, servers, 400*time.Millisecond, 4)
		out.Entries = append(out.Entries, entry{
			Name: fmt.Sprintf("reads/replicas=%d", replicas), Replicas: replicas,
			Servers: len(servers), ReadsPerSec: rps,
		})
		t.Logf("reads replicas=%d: %.0f reads/s", replicas, rps)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_replication.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
