// Columba reproduces the paper's §5 case study: an integrated system of
// protein structure annotation. Three differently-cleansed flavors of the
// same PDB structures (original, OpenMMS-style, MSD-style) are integrated
// hands-off; ALADIN flags the duplicates instead of merging them, surfaces
// their field-level conflicts ("Selecting the proper value for each data
// field is an important problem", §5), and links structures to a
// protein-classification source.
//
// Run with: go run ./examples/columba
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/rel"
)

// mkFlavor builds one flavor of the PDB with slightly different cleansing
// conventions: resolutions disagree, titles are re-worded.
func mkFlavor(name string, titles map[string]string, resolution map[string]string) *rel.Database {
	db := rel.NewDatabase(name)
	structure := db.Create("structure", rel.TextSchema("structure_id", "pdb_code", "title", "resolution"))
	i := 0
	for _, code := range codes {
		i++
		structure.AppendRaw(fmt.Sprintf("%d", i), code, titles[code], resolution[code])
	}
	return db
}

var codes = []string{"1HBA", "2LYZ", "3TRY", "4CAT", "5INS", "6MYO"}

var baseTitles = map[string]string{
	"1HBA": "human hemoglobin alpha chain oxygen transport",
	"2LYZ": "chicken lysozyme bacterial wall hydrolase",
	"3TRY": "porcine trypsin serine protease complex",
	"4CAT": "bovine catalase peroxide decomposition enzyme",
	"5INS": "insulin hormone hexamer zinc coordinated",
	"6MYO": "sperm whale myoglobin oxygen storage",
}

func reword(m map[string]string, suffix string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v + " " + suffix
	}
	return out
}

func main() {
	// The three flavors disagree on resolution for 1HBA (the §5 conflict
	// example) and agree elsewhere.
	resA := map[string]string{"1HBA": "1.8 angstroms", "2LYZ": "2.0 angstroms", "3TRY": "1.5 angstroms",
		"4CAT": "2.4 angstroms", "5INS": "1.9 angstroms", "6MYO": "2.1 angstroms"}
	resB := map[string]string{"1HBA": "1.9 angstroms", "2LYZ": "2.0 angstroms", "3TRY": "1.5 angstroms",
		"4CAT": "2.4 angstroms", "5INS": "1.9 angstroms", "6MYO": "2.1 angstroms"}

	pdb := mkFlavor("pdb", baseTitles, resA)
	openmms := mkFlavor("openmms", reword(baseTitles, "cleaned deposition"), resB)
	msd := mkFlavor("msd", reword(baseTitles, "curated entry"), resA)

	// A SCOP/CATH-like classification source: "writing a parser took only
	// a few hours in both cases" (§5) — here, a few lines.
	scop := rel.NewDatabase("scop")
	domain := scop.Create("domain", rel.TextSchema("domain_id", "scop_acc", "fold_class", "pdb_ref"))
	folds := []string{"all-alpha globin fold", "lysozyme fold", "trypsin-like fold",
		"catalase fold", "insulin fold", "globin fold variant"}
	for i, code := range codes {
		domain.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("SCOP%04d", i+1), folds[i], "PDB:"+code)
	}

	sys := core.New(core.Options{
		// Few structures: keep the default xref evidence minimum (3
		// matching values), which the 6 SCOP cross-references satisfy.
		Links: linkdisc.Options{},
	})
	for _, db := range []*rel.Database{pdb, openmms, msd, scop} {
		rep, err := sys.AddSource(db)
		if err != nil {
			log.Fatalf("integrating %s: %v", db.Name, err)
		}
		fmt.Printf("integrated %-8s primary=%-10s links=%v\n", db.Name, rep.Structure.Primary, rep.LinksAdded)
	}

	// The three flavors of each structure must be flagged (not merged).
	fmt.Println("\nduplicate clusters (flagged, never merged — §4.5):")
	var matches []dup.Match
	for _, l := range sys.Repo.Links(metadata.LinkDuplicate) {
		matches = append(matches, dup.Match{
			A: dup.Record{Source: l.From.Source, Relation: l.From.Relation, Accession: l.From.Accession},
			B: dup.Record{Source: l.To.Source, Relation: l.To.Relation, Accession: l.To.Accession},
		})
	}
	for _, cluster := range dup.Cluster(matches) {
		if len(cluster) < 2 {
			continue
		}
		fmt.Printf("  %s:", cluster[0].Accession)
		for _, ref := range cluster {
			fmt.Printf(" %s", ref.Source)
		}
		fmt.Println()
	}

	// Conflict exploration: the 1HBA resolution disagreement.
	fmt.Println("\nconflicts on 1HBA (pdb vs openmms):")
	a := recordFor(sys, "pdb", "1HBA")
	b := recordFor(sys, "openmms", "1HBA")
	for _, c := range dup.Conflicts(dup.Match{A: a, B: b}) {
		fmt.Printf("  %s\n", c)
	}

	// Browse: a structure shows its classification link.
	view, err := sys.Browse(metadata.ObjectRef{Source: "pdb", Relation: "structure", Accession: "1HBA"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbrowse pdb:1HBA links:")
	for _, l := range view.Linked {
		fmt.Printf("  %s -> %s (%s)\n", l.From, l.To, l.Method)
	}

	// Query across structure and classification.
	fmt.Println("\nSQL: globin-fold structures with their titles")
	res, err := sys.Query(`
		SELECT d.pdb_ref, d.fold_class, s.title
		FROM scop_domain d
		JOIN pdb_structure s ON d.domain_id = s.structure_id
		WHERE d.fold_class LIKE '%globin%'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %-24s %s\n", row[0].AsString(), row[1].AsString(), row[2].AsString())
	}
}

// recordFor rebuilds the duplicate-detection record of one object.
func recordFor(sys *core.System, source, acc string) dup.Record {
	m := sys.Repo.Source(source)
	view, err := sys.Browse(metadata.ObjectRef{Source: source, Relation: m.Structure.Primary, Accession: acc})
	if err != nil {
		log.Fatal(err)
	}
	rec := dup.Record{Source: source, Relation: m.Structure.Primary, Accession: acc,
		Fields: make(map[string]string)}
	for k, v := range view.Fields {
		if k == "structure_id" || k == "pdb_code" {
			continue
		}
		rec.Fields[k] = v
	}
	return rec
}
