// Genedisease reproduces the paper's §6 motivating query: "all genes of a
// certain species on a certain chromosome that are connected to a disease
// via a protein whose function is known". The full synthetic corpus
// (GenBank-like genes, Swiss-Prot-like proteins, OMIM-like diseases, GO,
// PDB, PIR) is integrated hands-off; the chain gene -> protein -> disease
// is then answered two ways: by traversing discovered object links, and
// by ranked path search ([BLM+04]).
//
// Run with: go run ./examples/genedisease
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metadata"
	"repro/internal/ontology"
)

func main() {
	corpus := datagen.Generate(datagen.Config{Seed: 21, Proteins: 30})
	sys := core.New(core.Options{OntologySources: []string{"go"}})
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			log.Fatalf("integrating %s: %v", src.Name, err)
		}
	}
	st := sys.Repo.Stats()
	fmt.Printf("integrated %d sources, %d links %v\n\n", st.Sources, st.Links, st.LinksByType)

	// The species/chromosome filter runs as SQL over the imported schema.
	res, err := sys.Query(`
		SELECT g.gene_acc, g.gene_desc
		FROM genbank_gene g
		WHERE g.gene_desc LIKE '%chromosome 1%'
		ORDER BY g.gene_acc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genes on chromosome 1*: %d candidates\n", len(res.Rows))

	// For each candidate gene, walk the discovered link graph:
	// gene --(sequence homology)--> protein --(xref)--> disease.
	fmt.Println("\ngene -> protein -> disease chains:")
	found := 0
	for _, row := range res.Rows {
		gene := metadata.ObjectRef{Source: "genbank", Relation: "gene", Accession: row[0].AsString()}
		for _, l1 := range sys.Repo.LinksOf(gene) {
			protein := otherEnd(l1, gene)
			if !strings.EqualFold(protein.Source, "swissprot") {
				continue
			}
			for _, l2 := range sys.Repo.LinksOf(protein) {
				disease := otherEnd(l2, protein)
				if !strings.EqualFold(disease.Source, "omim") {
					continue
				}
				found++
				fmt.Printf("  %s --[%s]--> %s --[%s]--> %s\n",
					gene.Accession, l1.Type, protein.Accession, l2.Type, disease.Accession)
				if found >= 8 {
					break
				}
			}
			if found >= 8 {
				break
			}
		}
		if found >= 8 {
			break
		}
	}

	// Ranked relatedness: which objects are best connected to a disease?
	// "query results can be ordered based on the number, consistency, and
	// length of different paths between two objects" (§6).
	disease := sys.Objects("omim")[0]
	fmt.Printf("\nobjects best connected to %s (path-ranked):\n", disease.Accession)
	for _, r := range sys.Related(disease, 3, 6) {
		fmt.Printf("  score=%.3f paths=%d %s:%s\n", r.Score, r.Paths, r.Ref.Source, r.Ref.Accession)
	}

	// Hierarchy-aware function similarity (§4.4 "the resulting values make
	// excellent links"): build the GO is_a hierarchy from the integrated
	// ontology source and compare the terms of two diseases' proteins.
	goDB := corpus.Source("go")
	hier, err := ontology.FromRelations(
		goDB.Relation("term"), "go_acc", "term_name",
		goDB.Relation("term_isa"), "term_id", "parent_term_id", "term_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGO hierarchy: %d terms, %d roots\n", hier.Len(), len(hier.Roots()))
	terms := []string{"GO:0001000", "GO:0001001", "GO:0001004"}
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			fmt.Printf("  term-similarity(%s, %s) = %.2f\n",
				terms[i], terms[j], hier.Similarity(terms[i], terms[j]))
		}
	}

	// Variability of link sources (§6: "there is more than one source
	// linking two databases"): count evidence methods per source pair.
	fmt.Println("\nlink evidence by source pair:")
	pairMethods := map[string]map[string]int{}
	for _, l := range sys.Repo.AllLinks() {
		pair := l.From.Source + "~" + l.To.Source
		if l.To.Source < l.From.Source {
			pair = l.To.Source + "~" + l.From.Source
		}
		if pairMethods[pair] == nil {
			pairMethods[pair] = map[string]int{}
		}
		pairMethods[pair][l.Type.String()]++
	}
	for pair, methods := range pairMethods {
		if methods["xref"] > 0 && (methods["sequence"] > 0 || methods["text"] > 0) {
			fmt.Printf("  %-22s %v  (multiple independent link sets)\n", pair, methods)
		}
	}
}

func otherEnd(l metadata.Link, ref metadata.ObjectRef) metadata.ObjectRef {
	if l.From.Key() == ref.Key() {
		return l.To
	}
	return l.From
}
