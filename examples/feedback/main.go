// Feedback demonstrates the §6.2 maintenance features: users flag wrong
// links, which are removed and never rediscovered; and data changes
// accumulate against a threshold before a source is re-analyzed ("We
// envisage a threshold on the number of changes to a data source before a
// new analysis is carried out").
//
// Run with: go run ./examples/feedback
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metadata"
	"repro/internal/rel"
)

func main() {
	corpus := datagen.Generate(datagen.Config{Seed: 33, Proteins: 20})
	sys := core.New(core.Options{OntologySources: []string{"go"}, ChangeThreshold: 0.1})
	var sources []*rel.Database
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			log.Fatalf("integrating %s: %v", src.Name, err)
		}
		sources = append(sources, src)
	}
	before := sys.Repo.LinkCount(-1)
	fmt.Printf("links after integration: %d\n", before)

	// A user browsing P10000 decides one of its text links is spurious.
	obj := metadata.ObjectRef{Source: "swissprot", Relation: "protein", Accession: "P10000"}
	view, err := sys.Browse(obj)
	if err != nil {
		log.Fatal(err)
	}
	var victim metadata.Link
	for _, l := range view.Linked {
		if l.Type == metadata.LinkText {
			victim = l
			break
		}
	}
	if victim.Method == "" && len(view.Linked) > 0 {
		victim = view.Linked[0]
	}
	fmt.Printf("user removes link: %s -> %s (%s)\n", victim.From, victim.To, victim.Method)
	if ok, err := sys.RemoveLinkFeedback(victim); err != nil || !ok {
		log.Fatal("link removal failed")
	}
	fmt.Printf("links after feedback: %d\n", sys.Repo.LinkCount(-1))

	// Data changes trickle in; only past the threshold does re-analysis run.
	total := sys.Repo.Source("swissprot").TupleCount
	for _, change := range []int{total / 20, total / 20, total / 12} {
		needs := sys.RecordChanges("swissprot", change)
		fmt.Printf("recorded %d changed tuples -> re-analysis needed: %v\n", change, needs)
		if needs {
			rep, err := sys.Reanalyze("swissprot")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("re-analysis done in %v; primary still %q\n", rep.Duration(), rep.Structure.Primary)
		}
	}

	// The removed link must not come back after re-analysis (§6.2: "false
	// links between relations can be removed quickly").
	view, err = sys.Browse(obj)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range view.Linked {
		if l.From == victim.From && l.To == victim.To && l.Type == victim.Type {
			log.Fatal("removed link was resurrected")
		}
	}
	fmt.Println("removed link stayed removed after re-analysis")
}
