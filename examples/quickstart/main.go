// Quickstart: import two small flat-file sources, let ALADIN integrate
// them hands-off, and use all three access modes — through the public
// aladin package, the supported entry point.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/aladin"
	"repro/internal/flatfile"
)

// Two tiny sources in real exchange formats: a Swiss-Prot-style flat file
// whose DR lines cross-reference PDB, and a FASTA file of structures.
const swissprotFile = `ID   HBA_HUMAN   Reviewed;   141 AA.
AC   P69905;
DE   Hemoglobin subunit alpha oxygen transport protein.
OS   Homo sapiens (Human).
DR   PDB; 1ABC; X-ray.
KW   Oxygen transport; Heme.
CC   -!- FUNCTION: Carries oxygen from the lungs to peripheral tissues.
SQ   SEQUENCE
     ATGGTGCTGT CTCCTGCCGA CAAGACCAAC GTCAAGGCCG CCTGGGGTAA
//
ID   LYSC_CHICK   Reviewed;   147 AA.
AC   P00698;
DE   Lysozyme C bacterial cell wall hydrolase.
OS   Gallus gallus (Chicken).
DR   PDB; 2DEF; X-ray.
KW   Hydrolase; Antimicrobial.
CC   -!- FUNCTION: Degrades bacterial cell walls.
SQ   SEQUENCE
     ATGAGGTCTT TGCTAATCTT GGTGCTTTGC TTCCTGCCCC TGGCTGCTCT
//
ID   TRY_PIG   Reviewed;   231 AA.
AC   P00761;
DE   Trypsin serine protease digesting dietary proteins.
OS   Sus scrofa (Pig).
DR   PDB; 3GHI; X-ray.
KW   Protease; Digestion.
CC   -!- FUNCTION: Cleaves peptide bonds after lysine or arginine.
SQ   SEQUENCE
     ATGAAGACCT TTATTTTTCT TGCCCTGCTG GGAGCTGCCG TTGCTATGCC
//
`

const pdbFasta = `>1ABC hemoglobin alpha chain oxygen carrier structure
ATGGTGCTGTCTCCTGCCGACAAGACCAACGTCAAGGCCGCCTGGGGTAG
>2DEF lysozyme c hydrolase crystal structure
ATGAGGTCTTTGCTAATCTTGGTGCTTTGCTTCCTGCCCCTGGCTGCTCT
>3GHI trypsin protease crystal structure
ATGAAGACCTTTATTTTTCTTGCCCTGCTGGGAGCTGCCGTTGCTATGCC
>9ZZZ uncharacterized orphan structure
TTTTTTTTTTAAAAAAAAAACCCCCCCCCCGGGGGGGGGGTTTTTTTTTT
`

func main() {
	// Step 1 of the pipeline — data import — is the one manual step.
	swissprot, err := flatfile.ParseEMBL(strings.NewReader(swissprotFile), "swissprot")
	if err != nil {
		log.Fatal(err)
	}
	pdb, err := flatfile.ParseFASTA(strings.NewReader(pdbFasta), "pdb")
	if err != nil {
		log.Fatal(err)
	}

	// Steps 2-5 are automatic.
	ctx := context.Background()
	db, err := aladin.Open()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := db.AddSource(ctx, swissprot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swissprot: primary relation %q, accession column %q\n",
		rep.Structure.Primary, rep.Structure.PrimaryAccession)
	swissprotPrimary := rep.Structure.Primary
	rep, err = db.AddSource(ctx, pdb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pdb:       primary relation %q, accession column %q\n",
		rep.Structure.Primary, rep.Structure.PrimaryAccession)
	fmt.Printf("links discovered while adding pdb: %v\n\n", rep.LinksAdded)

	// Access mode 1: browse the object web.
	ref := aladin.ObjectRef{Source: "swissprot", Relation: swissprotPrimary, Accession: "P69905"}
	view, err := db.Browse(ctx, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("browse P69905:")
	fmt.Printf("  description: %s\n", view.Fields["description"])
	for _, l := range view.Linked {
		fmt.Printf("  linked: %s -> %s via %s (confidence %.2f)\n",
			l.From.Accession, l.To.Accession, l.Method, l.Confidence)
	}

	// Access mode 2: ranked full-text search.
	fmt.Println("\nsearch \"oxygen transport\":")
	hits, err := db.Search(ctx, "oxygen transport", aladin.SearchFilter{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range hits {
		fmt.Printf("  [%.2f] %s:%s\n", r.Score, r.Document.Object.Source, r.Document.Object.Accession)
	}

	// Access mode 3: SQL over the imported schemata, streamed row by row
	// through a database/sql-shaped cursor (db.Query returns the same
	// result fully materialized).
	fmt.Println("\nSQL join across both sources:")
	rows, err := db.QueryRows(ctx, `
		SELECT e.accession, e.entry_name, d.ref_accession
		FROM swissprot_entry e
		JOIN swissprot_dbref d ON d.entry_id = e.entry_id
		ORDER BY e.accession`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var acc, name, ref string
		if err := rows.Scan(&acc, &name, &ref); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %s  ->  PDB %s\n", acc, name, ref)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
