package aladin_test

import (
	"context"
	"fmt"

	"repro/aladin"
	"repro/internal/datagen"
)

// Example integrates two sources of the synthetic life-science corpus
// and exercises the three access modes: SQL, search, and browsing.
func Example() {
	ctx := context.Background()
	db, err := aladin.Open(aladin.WithOntologySources("go"), aladin.WithWorkers(1))
	if err != nil {
		panic(err)
	}
	defer db.Close()

	// Step 1, data import, is the caller's job (§3); the synthetic corpus
	// stands in for parsed flat files here.
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 8})
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := db.AddSource(ctx, corpus.Source(name)); err != nil {
			panic(err)
		}
	}

	// SQL over the integrated warehouse: <source>_<relation> names.
	res, err := db.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein")
	if err != nil {
		panic(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	fmt.Println("proteins:", n)

	// Ranked search and object browsing.
	objs, _ := db.Objects(ctx, "swissprot")
	view, err := db.Browse(ctx, objs[0])
	if err != nil {
		panic(err)
	}
	fmt.Println("first object:", view.Ref.Accession)

	// Output:
	// proteins: 8
	// first object: P10000
}
