package aladin

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/rel"
	"repro/internal/sqlx"
)

// Rows is a streaming SQL result cursor, shaped like database/sql's Rows:
//
//	rows, err := db.QueryRows(ctx, "SELECT accession, mass FROM swissprot_protein LIMIT 10")
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var acc string
//		var mass float64
//		if err := rows.Scan(&acc, &mass); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows are computed on demand: a LIMIT query stops reading the warehouse
// as soon as the limit is satisfied, and abandoning the cursor after k
// rows has paid only for those k rows (pipeline breakers — ORDER BY,
// aggregation — drain their input on the first Next).
//
// The cursor runs over an immutable snapshot of the warehouse taken when
// QueryRows returned: the database's read lock is NOT held while
// iterating, and the rows stay valid and consistent even if a concurrent
// AddSource commits mid-iteration — the cursor simply keeps seeing the
// pre-add state. A Rows is not safe for concurrent use by multiple
// goroutines; open one per goroutine.
type Rows struct {
	ctx    context.Context
	cur    *sqlx.Cursor
	sid    SnapshotID
	row    rel.Tuple
	err    error
	closed bool
}

// SnapshotID identifies the immutable warehouse snapshot this cursor
// iterates — captured under the same lock as the snapshot itself, so it
// names exactly the state the rows come from. The HTTP layer tags
// responses with it and binds pagination cursors to it.
func (r *Rows) SnapshotID() SnapshotID { return r.sid }

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cur.Columns() }

// Next advances to the next row, reporting false at the end of the
// result or on error (distinguish with Err). The context passed to
// QueryRows governs the iteration: cancellation aborts a scan promptly
// and surfaces as ErrCanceled from Err.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	row, err := r.cur.Next(r.ctx)
	if err == io.EOF {
		r.closed = true
		return false
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			r.err = fmt.Errorf("%w: %w", ErrCanceled, err)
		} else {
			r.err = fmt.Errorf("%w: %w", ErrBadQuery, err)
		}
		r.closed = true
		return false
	}
	r.row = row
	return true
}

// Scan copies the current row into dest, one target per column, in
// column order. Supported targets: *string, *int64, *int, *float64,
// *bool, and *any (which receives nil for NULL, otherwise int64,
// float64, bool, or string by the value's kind). NULLs scan as zero
// values into typed targets.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return errors.New("aladin: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("aladin: Scan got %d targets for %d columns", len(dest), len(r.row))
	}
	for i, d := range dest {
		v := r.row[i]
		switch t := d.(type) {
		case *string:
			*t = v.AsString()
		case *int64:
			n, ok := v.AsInt()
			if !ok && !v.IsNull() {
				return fmt.Errorf("aladin: column %d: cannot scan %s into *int64", i, v.Kind())
			}
			*t = n
		case *int:
			n, ok := v.AsInt()
			if !ok && !v.IsNull() {
				return fmt.Errorf("aladin: column %d: cannot scan %s into *int", i, v.Kind())
			}
			*t = int(n)
		case *float64:
			f, ok := v.AsFloat()
			if !ok && !v.IsNull() {
				return fmt.Errorf("aladin: column %d: cannot scan %s into *float64", i, v.Kind())
			}
			*t = f
		case *bool:
			b, ok := v.AsBool()
			if !ok && !v.IsNull() {
				return fmt.Errorf("aladin: column %d: cannot scan %s into *bool", i, v.Kind())
			}
			*t = b
		case *any:
			switch v.Kind() {
			case rel.KindNull:
				*t = nil
			case rel.KindInt:
				n, _ := v.AsInt()
				*t = n
			case rel.KindFloat:
				f, _ := v.AsFloat()
				*t = f
			case rel.KindBool:
				b, _ := v.AsBool()
				*t = b
			default:
				*t = v.AsString()
			}
		default:
			return fmt.Errorf("aladin: column %d: unsupported Scan target %T", i, d)
		}
	}
	return nil
}

// RowStrings returns the current row rendered as display strings (the
// form the CLI and HTTP server emit): NULL renders as "", numbers in
// their SQL text form. Valid after a successful Next; the slice is
// freshly allocated and owned by the caller.
func (r *Rows) RowStrings() []string {
	out := make([]string, len(r.row))
	for i, v := range r.row {
		out[i] = v.AsString()
	}
	return out
}

// Err returns the error that terminated iteration, nil after a clean end
// of result.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor; subsequent Next calls report false. Close is
// idempotent and safe to defer alongside explicit draining.
func (r *Rows) Close() error {
	r.closed = true
	return r.cur.Close()
}

// Scanned reports how many stored warehouse tuples the query has read so
// far — a diagnostic probe making early termination observable: a
// LIMIT 10 scan over a million-row relation reports ~10, not a million.
func (r *Rows) Scanned() int64 { return r.cur.Scanned() }

// QueryRows runs a SQL SELECT over the integrated warehouse and returns
// a streaming cursor. Relations are addressable as "<source>_<relation>",
// e.g. "swissprot_protein". The read lock is held only while taking a
// warehouse snapshot; iteration runs lock-free against that snapshot (see
// Rows). Only SELECT statements are accepted — the query access mode is
// read-only; everything else returns ErrBadQuery.
//
// With WithPlanCache, prepared plans are reused across calls by SQL text.
// Errors: ErrBadQuery, ErrCanceled, ErrClosed.
func (d *DB) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	rows, _, err := d.queryRows(ctx, sql, false)
	return rows, err
}

// QueryRowsExplain is QueryRows plus the access plan, bound to the SAME
// warehouse snapshot the returned cursor iterates — unlike separate
// Explain and QueryRows calls, which each take their own snapshot and
// can straddle an AddSource commit, so the plan would not describe the
// rows. Errors: ErrBadQuery, ErrCanceled, ErrClosed.
func (d *DB) QueryRowsExplain(ctx context.Context, sql string) (*Rows, string, error) {
	return d.queryRows(ctx, sql, true)
}

// snapshotPlan is the shared read prologue: take a warehouse snapshot
// under a brief RLock — capturing the snapshot ID under the same lock,
// so the ID names exactly that snapshot — and resolve sql to a plan
// (via the cache when configured).
func (d *DB) snapshotPlan(ctx context.Context, sql string) (*rel.Database, *sqlx.Plan, SnapshotID, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, nil, SnapshotID{}, err
	}
	d.mu.RLock()
	if err := d.checkOpenRLocked(); err != nil {
		d.mu.RUnlock()
		return nil, nil, SnapshotID{}, err
	}
	snap := d.sys.WarehouseSnapshot()
	gen, seq := d.sys.SnapshotID()
	d.mu.RUnlock()

	plan, err := d.plan(snap, sql)
	if err != nil {
		return nil, nil, SnapshotID{}, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	return snap, plan, SnapshotID{Gen: gen, Seq: seq}, nil
}

func (d *DB) queryRows(ctx context.Context, sql string, explain bool) (*Rows, string, error) {
	snap, plan, sid, err := d.snapshotPlan(ctx, sql)
	if err != nil {
		return nil, "", err
	}
	planText := ""
	if explain {
		if planText, err = plan.Explain(snap); err != nil {
			return nil, "", fmt.Errorf("%w: %w", ErrBadQuery, err)
		}
	}
	cur, err := plan.OpenParallel(ctx, snap, d.workers)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, "", fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		return nil, "", fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	return &Rows{ctx: ctx, cur: cur, sid: sid}, planText, nil
}

// Explain renders the access plan a query would execute right now,
// without running it: the operator tree with the chosen access path
// (IndexScan, Scan, IndexJoin, HashJoin with build side, ...) and
// estimated cardinality of every scan and join node. Access paths bind
// to the current warehouse snapshot, so the same SQL may explain
// differently after an AddSource commit publishes new indexes.
// Errors: ErrBadQuery, ErrCanceled, ErrClosed.
func (d *DB) Explain(ctx context.Context, sql string) (string, error) {
	snap, plan, _, err := d.snapshotPlan(ctx, sql)
	if err != nil {
		return "", err
	}
	text, err := plan.Explain(snap)
	if err != nil {
		return "", fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	return text, nil
}

// ExplainAnalyze executes the query and renders its operator tree
// annotated with both estimated and actual rows (plus cumulative time)
// per operator, and a summary line with total rows, wall time and
// tuples scanned. Execution uses the same parallelism degree as
// QueryRows (WithWorkers), so the plan shows the Gather exchange when
// morsel parallelism actually kicked in. The query's rows are fully
// computed and discarded — use it for tuning, not for fetching results.
// Errors: ErrBadQuery, ErrCanceled, ErrClosed.
func (d *DB) ExplainAnalyze(ctx context.Context, sql string) (string, error) {
	snap, plan, _, err := d.snapshotPlan(ctx, sql)
	if err != nil {
		return "", err
	}
	text, err := plan.ExplainAnalyze(ctx, snap, d.workers)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return "", fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		return "", fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	return text, nil
}

// plan resolves sql to a Plan, via the LRU cache when configured. Plans
// are immutable and bind to data only at open time, so one cached plan
// serves successive warehouse snapshots.
func (d *DB) plan(snap *rel.Database, sql string) (*sqlx.Plan, error) {
	if d.plans == nil {
		return sqlx.Prepare(snap, sql)
	}
	if p := d.plans.get(sql); p != nil {
		return p, nil
	}
	p, err := sqlx.Prepare(snap, sql)
	if err != nil {
		return nil, err
	}
	d.plans.put(sql, p)
	return p, nil
}

// planCache is a small mutex-guarded LRU of prepared plans keyed by SQL
// text. Parse cost dominates short queries (see BenchmarkSQLParse), so
// hot dashboards issuing the same statements skip it entirely.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type planEntry struct {
	sql  string
	plan *sqlx.Plan
}

func newPlanCache(n int) *planCache {
	return &planCache{cap: n, m: make(map[string]*list.Element, n), lru: list.New()}
}

func (c *planCache) get(sql string) *sqlx.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sql]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

func (c *planCache) put(sql string, p *sqlx.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*planEntry).plan = p
		return
	}
	c.m[sql] = c.lru.PushFront(&planEntry{sql: sql, plan: p})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*planEntry).sql)
	}
}

// len reports the number of cached plans (for tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
