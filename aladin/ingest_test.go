package aladin

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
)

// fastaText renders records start..start+n-1 of the deterministic
// streaming-test corpus.
func fastaText(t testing.TB, start, n int) string {
	t.Helper()
	var sb strings.Builder
	if err := datagen.FastaTextRange(&sb, start, n, 7); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// tableCount returns COUNT(*) of one table, or -1 with the error (the
// table may not exist yet while an ingest's first batch is in flight).
func tableCount(db *DB, table string) (int64, error) {
	res, err := db.Query(context.Background(), "SELECT COUNT(*) FROM "+table)
	if err != nil {
		return -1, err
	}
	n, _ := res.Rows[0][0].AsInt()
	return n, nil
}

// waitCount polls until the table holds at least want rows.
func waitCount(t *testing.T, db *DB, table string, want int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n, err := tableCount(db, table)
		if err == nil && n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("table %s stuck at %d rows (err %v), want >= %d", table, n, err, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestIngestSource(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	var progress []IngestProgress
	rep, err := db.IngestSource(ctx, "seqs", "fasta", strings.NewReader(fastaText(t, 0, 250)),
		WithBatchRecords(100),
		WithIngestProgress(func(p IngestProgress) { progress = append(progress, p) }))
	if err != nil {
		t.Fatalf("IngestSource: %v", err)
	}
	if rep.Source != "seqs" || rep.Records != 250 || rep.Batches != 3 || rep.Bytes == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(progress) != 3 || progress[2].Records != 250 {
		t.Fatalf("progress = %+v", progress)
	}
	if n, err := tableCount(db, "seqs_fasta"); err != nil || n != 250 {
		t.Fatalf("row count = %d (%v), want 250", n, err)
	}
	// Records of every batch are searchable and browsable.
	hits, err := db.Search(ctx, "SQ000205", SearchFilter{}, 5)
	if err != nil || len(hits) == 0 {
		t.Fatalf("appended record not searchable: %v (%d hits)", err, len(hits))
	}
	objs := mustObjects(t, db, "seqs")
	if len(objs) != 250 {
		t.Fatalf("browse knows %d objects, want 250", len(objs))
	}
	// The observability totals reflect the run.
	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ig := st.Ingest
	if ig.Runs != 1 || ig.Batches != 3 || ig.Records != 250 || ig.Bytes != rep.Bytes {
		t.Fatalf("ingest stats = %+v", ig)
	}
	if ig.Parse <= 0 || ig.Commit <= 0 {
		t.Fatalf("ingest stage timings missing: %+v", ig)
	}

	// A second run appends to the now-existing source.
	rep2, err := db.IngestSource(ctx, "seqs", "fasta", strings.NewReader(fastaText(t, 250, 50)))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Records != 50 {
		t.Fatalf("second run = %+v", rep2)
	}
	if n, _ := tableCount(db, "seqs_fasta"); n != 300 {
		t.Fatalf("row count after second run = %d, want 300", n)
	}
	if st, _ := db.Stats(ctx); st.Ingest.Runs != 2 {
		t.Fatalf("runs = %d, want 2", st.Ingest.Runs)
	}
}

func TestIngestSourceBadInput(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	r := strings.NewReader("x")
	if _, err := db.IngestSource(ctx, "s", "obo", r); !errors.Is(err, ErrBadFormat) {
		t.Errorf("obo ingest = %v, want ErrBadFormat", err)
	}
	if _, err := db.IngestSource(ctx, "s", "nosuch", r); !errors.Is(err, ErrBadFormat) {
		t.Errorf("unknown format = %v, want ErrBadFormat", err)
	}
	if _, err := db.IngestSource(ctx, "", "fasta", r); err == nil {
		t.Error("empty source name accepted")
	}
}

// TestIngestConcurrentReaders is the reader-safety bar: while a stream
// ingests in 50-record batches, concurrent queries only ever observe
// batch-boundary snapshots — counts that are multiples of the batch
// size — never a torn batch. Run under -race.
func TestIngestConcurrentReaders(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	const readers = 4
	done := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				n, err := tableCount(db, "seqs_fasta")
				if err != nil {
					continue // source not created yet
				}
				if n%50 != 0 {
					errCh <- fmt.Errorf("reader %d saw %d rows mid-batch", r, n)
					return
				}
			}
		}(r)
	}

	rep, err := db.IngestSource(ctx, "seqs", "fasta", strings.NewReader(fastaText(t, 0, 300)),
		WithBatchRecords(50))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("IngestSource under load: %v", err)
	}
	if rep.Records != 300 || rep.Batches != 6 {
		t.Fatalf("report = %+v", rep)
	}
	select {
	case rerr := <-errCh:
		t.Fatal(rerr)
	default:
	}
}

// A durable ingest journals one frame per batch; close and reopen
// recovers the full streamed source.
func TestIngestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.IngestSource(ctx, "seqs", "fasta", strings.NewReader(fastaText(t, 0, 120)),
		WithBatchRecords(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, err := tableCount(re, "seqs_fasta"); err != nil || n != 120 {
		t.Fatalf("recovered count = %d (%v), want 120", n, err)
	}
	if hits, err := re.Search(ctx, "SQ000111", SearchFilter{}, 5); err != nil || len(hits) == 0 {
		t.Fatalf("recovered record not searchable: %v (%d hits)", err, len(hits))
	}
}

// TestLiveSource tails a file that grows while the database is open:
// existing records surface shortly after Open, appended records surface
// without any explicit call, and Close commits the final held record
// (durable, so the total is visible on reopen).
func TestLiveSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(t.TempDir(), "live.fasta")
	if err := os.WriteFile(path, []byte(fastaText(t, 0, 30)), 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(WithDataDir(dir), WithLiveSource("live", "fasta", path))
	if err != nil {
		t.Fatal(err)
	}
	// The FASTA scanner holds the final record open until end of stream,
	// so the tail surfaces 29 of the 30 on-disk records.
	waitCount(t, db, "live_fasta", 29)

	st, err := db.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.LiveSources != 1 || st.Ingest.LastError != "" {
		t.Fatalf("live stats = %+v", st.Ingest)
	}

	// The file grows; the tail picks the continuation up by itself.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fastaText(t, 30, 30)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitCount(t, db, "live_fasta", 59)

	// Close stops the tail; the held final record commits on the way out.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, err := tableCount(re, "live_fasta"); err != nil || n != 60 {
		t.Fatalf("count after close = %d (%v), want 60", n, err)
	}
}

func TestLiveSourceValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.fasta")
	os.WriteFile(path, nil, 0o644)
	if _, err := Open(WithLiveSource("s", "obo", path)); err == nil {
		t.Error("live source with non-streamable format accepted")
	}
	if _, err := Open(WithLiveSource("s", "fasta", filepath.Join(t.TempDir(), "missing"))); err == nil {
		t.Error("live source with missing file accepted")
	}
	srv := httptest.NewServer(nil)
	defer srv.Close()
	if _, err := Open(WithDataDir(t.TempDir()), WithReplicaOf(srv.URL),
		WithLiveSource("s", "fasta", path)); err == nil {
		t.Error("live source on a replica accepted")
	}
}

// ingestFingerprint summarizes the state a replica must converge to
// after a streamed ingest: counts plus the full ordered accession column.
func ingestFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	ctx := context.Background()
	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sources=%d links=%d\n", st.Repo.Sources, st.Repo.Links)
	res, err := db.Query(ctx, "SELECT accession FROM seqs_fasta ORDER BY accession")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%s\n", row[0].AsString())
	}
	return b.String()
}

// TestReplicaConvergesDuringIngest streams a source into the primary
// while a replica follows: every batch is one replicated record, and the
// replica converges to the exact final state.
func TestReplicaConvergesDuringIngest(t *testing.T) {
	primary := openDurableWith(t, t.TempDir(), nil)
	defer primary.Close()
	srv := httptest.NewServer(primary.ReplHandler())
	defer srv.Close()
	replica := openReplicaOf(t, srv.URL, t.TempDir())
	defer replica.Close()

	rep, err := primary.IngestSource(context.Background(), "seqs", "fasta",
		strings.NewReader(fastaText(t, 0, 300)), WithBatchRecords(50))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 6 {
		t.Fatalf("report = %+v", rep)
	}
	waitCaughtUp(t, primary, replica)
	if got, want := ingestFingerprint(t, replica), ingestFingerprint(t, primary); got != want {
		t.Fatalf("replica diverges after streamed ingest:\n--- replica\n%s--- primary\n%s", got, want)
	}
	// The stream keeps flowing: another run, another convergence.
	if _, err := primary.IngestSource(context.Background(), "seqs", "fasta",
		strings.NewReader(fastaText(t, 300, 60)), WithBatchRecords(25)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, replica)
	if got, want := ingestFingerprint(t, replica), ingestFingerprint(t, primary); got != want {
		t.Fatalf("replica diverges after second run:\n--- replica\n%s--- primary\n%s", got, want)
	}
	if n, err := tableCount(replica, "seqs_fasta"); err != nil || n != 360 {
		t.Fatalf("replica count = %d (%v), want 360", n, err)
	}
}
