package aladin

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/store"
)

// This file is the durable side of the DB: opening (recovering) a data
// directory, DML execution, and checkpointing. The discipline mirrors
// AddSource's prepare/commit split: BeginCheckpoint runs under the READ
// lock (mutators take the write lock, so the captured state is
// consistent; concurrent readers are not blocked), and the expensive
// segment encoding runs off-lock against immutable snapshots.

// DurabilityStats reports the state of the write-ahead log and
// checkpoints; the zero value (Enabled=false) means the database was
// opened without WithDataDir.
type DurabilityStats struct {
	Enabled bool
	Dir     string
	// Gen counts completed checkpoints.
	Gen uint64
	// WALRecords / WALBytes measure the mutations journaled since the
	// last checkpoint — the replay work a crash right now would incur.
	WALRecords int
	WALBytes   int64
	// DirtySources is the number of sources the next checkpoint must
	// rewrite; Sources is the number already checkpointed.
	DirtySources   int
	Sources        int
	LastCheckpoint time.Time
	// LastCheckpointError reports the most recent (possibly automatic)
	// checkpoint failure, "" after a success.
	LastCheckpointError string
}

// openDurable opens (or recovers) a durable database from cfg.dataDir.
func openDurable(cfg *config, plans *planCache) (*DB, error) {
	dir, err := store.OpenDir(cfg.dataDir)
	if err != nil {
		return nil, fmt.Errorf("aladin: opening data directory: %w", err)
	}
	if cfg.snapshot != nil {
		if dir.HasData() {
			dir.Close()
			return nil, fmt.Errorf("aladin: data directory %s already holds data; importing a snapshot requires a fresh directory", dir.Path())
		}
		sys, err := core.Load(cfg.core, cfg.snapshot)
		if err != nil {
			dir.Close()
			return nil, fmt.Errorf("aladin: restoring snapshot: %w", err)
		}
		sys.AttachDurable(dir)
		sys.MarkAllDirty()
		db := &DB{sys: sys, plans: plans, dir: dir, checkpointEvery: cfg.checkpointEvery,
			workers: parallel.Workers(cfg.core.Workers)}
		if err := db.Checkpoint(context.Background()); err != nil {
			dir.Close()
			return nil, fmt.Errorf("aladin: checkpointing imported snapshot: %w", err)
		}
		return db, nil
	}
	sys, _, err := core.Recover(cfg.core, dir)
	if err != nil {
		dir.Close()
		return nil, fmt.Errorf("aladin: recovering %s: %w", dir.Path(), err)
	}
	return &DB{sys: sys, plans: plans, dir: dir, checkpointEvery: cfg.checkpointEvery,
		workers: parallel.Workers(cfg.core.Workers)}, nil
}

// Exec executes one INSERT, UPDATE or DELETE statement against a
// warehouse relation (addressable as "<source>_<relation>", like Query).
// On a durable database the statement is journaled before it is
// acknowledged. Changed-tuple counts feed the §6.2 threshold policy (see
// RecordChanges/Reanalyze); derived artifacts — links, search index,
// duplicate flags — intentionally go stale until Reanalyze.
// Errors: ErrBadQuery, ErrCanceled, ErrClosed.
func (d *DB) Exec(ctx context.Context, sql string) (*QueryResult, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.replicaGuard(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	res, err := d.sys.Exec(sql)
	d.mu.Unlock()
	if err != nil {
		if errors.Is(err, core.ErrDurability) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	d.maybeCheckpoint()
	return res, nil
}

// Checkpoint folds the write-ahead log into per-source segments: only
// sources dirtied since the last checkpoint are re-encoded, the manifest
// is swapped atomically, and the subsumed log files are trimmed. Readers
// and the capture phase overlap; only concurrent checkpoints serialize.
// Errors: ErrClosed, ErrCanceled, or the checkpoint IO error.
func (d *DB) Checkpoint(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if d.dir == nil {
		return errors.New("aladin: no data directory (open with WithDataDir)")
	}
	d.chkMu.Lock()
	defer d.chkMu.Unlock()
	d.mu.RLock()
	err := d.checkOpenRLocked()
	var cp *core.PendingCheckpoint
	if err == nil {
		cp, err = d.sys.BeginCheckpoint()
	}
	d.mu.RUnlock()
	if err == nil {
		err = d.sys.WriteCheckpoint(cp)
	}
	d.chkErrMu.Lock()
	d.lastChkErr = err
	d.chkErrMu.Unlock()
	return err
}

// maybeCheckpoint runs a checkpoint once the WAL has accumulated the
// WithCheckpointEvery threshold. Best-effort: failures surface in
// Stats().Durability.LastCheckpointError, not to the mutating caller
// (whose mutation IS durable — in the log, just not yet in segments).
func (d *DB) maybeCheckpoint() {
	if d.dir == nil || d.checkpointEvery <= 0 {
		return
	}
	if d.sys.WALRecordsSinceCheckpoint() < d.checkpointEvery {
		return
	}
	_ = d.Checkpoint(context.Background())
}

// durabilityStats assembles the Stats().Durability block.
func (d *DB) durabilityStats() DurabilityStats {
	cs, ok := d.sys.DurabilityStats()
	if !ok {
		return DurabilityStats{}
	}
	out := DurabilityStats{
		Enabled:        true,
		Dir:            cs.Dir,
		Gen:            cs.Gen,
		WALRecords:     cs.WALRecords,
		WALBytes:       cs.WALBytes,
		DirtySources:   cs.DirtySources,
		Sources:        cs.Sources,
		LastCheckpoint: cs.LastCheckpoint,
	}
	d.chkErrMu.Lock()
	if d.lastChkErr != nil {
		out.LastCheckpointError = d.lastChkErr.Error()
	}
	d.chkErrMu.Unlock()
	return out
}
