package aladin

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/datagen"
)

// TestExplain: the public Explain renders the plan with the chosen
// access paths against the current snapshot.
func TestExplain(t *testing.T) {
	db := openWith(t, testCorpus(), "swissprot")
	ctx := context.Background()

	text, err := db.Explain(ctx, `SELECT entry_name FROM swissprot_protein WHERE accession = 'P10001'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "IndexScan(swissprot_protein") {
		t.Errorf("Explain did not choose the accession index:\n%s", text)
	}
	if _, err := db.Explain(ctx, `DELETE FROM swissprot_protein`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("Explain(DELETE) err = %v, want ErrBadQuery", err)
	}
	if _, err := db.Explain(ctx, `SELECT * FROM nope`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("Explain(bad table) err = %v, want ErrBadQuery", err)
	}

	// QueryRowsExplain binds plan and cursor to one snapshot: the plan
	// names the index path and the cursor's pull count confirms it.
	rows, plan, err := db.QueryRowsExplain(ctx, `SELECT entry_name FROM swissprot_protein WHERE accession = 'P10001'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !strings.Contains(plan, "IndexScan") {
		t.Errorf("QueryRowsExplain plan:\n%s", plan)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 || rows.Scanned() != 1 {
		t.Errorf("rows=%d scanned=%d, want 1/1 (plan must describe these rows)", n, rows.Scanned())
	}
}

// TestPlanCacheRebindsToNewSnapshotIndexes is the plan-cache correctness
// hammer: a plan prepared (and cached) before AddSource commits must, on
// re-Open, bind to the new snapshot — including the indexes of relations
// published by the commit — while concurrent readers keep using it under
// -race. The point query must keep reporting Scanned() == 1 throughout.
func TestPlanCacheRebindsToNewSnapshotIndexes(t *testing.T) {
	corpus := datagen.Generate(datagen.Config{Seed: 7, Proteins: 16})
	db, err := Open(WithOntologySources("go"), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.AddSource(ctx, corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT entry_name FROM swissprot_protein WHERE accession = 'P10003'`
	probe := func() error {
		rows, err := db.QueryRows(ctx, q)
		if err != nil {
			return err
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			return err
		}
		if n != 1 {
			return errors.New("point query did not return exactly one row")
		}
		if rows.Scanned() != 1 {
			return errors.New("cached plan stopped probing the index")
		}
		return nil
	}
	// Seed the cache before any further commit.
	if err := probe(); err != nil {
		t.Fatal(err)
	}
	if got := db.plans.len(); got != 1 {
		t.Fatalf("plan cache holds %d plans, want 1", got)
	}

	// Hammer the cached plan while three more sources commit.
	const readers = 6
	done := make(chan struct{})
	errCh := make(chan error, readers)
	var iterations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := probe(); err != nil {
					errCh <- err
					return
				}
				iterations.Add(1)
			}
		}()
	}
	for _, name := range []string{"pdb", "pir", "go"} {
		if _, err := db.AddSource(ctx, corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if iterations.Load() == 0 {
		t.Fatal("hammer performed no complete iterations")
	}

	// After the commits the same cached plan binds to the new snapshot:
	// it can join against a relation that did not exist at prepare time,
	// and a fresh plan over the new source's indexes probes them.
	if err := probe(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(ctx, `SELECT pdb_code FROM pdb_structure WHERE pdb_code = '1AA0'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if rows.Scanned() > 1 {
		t.Errorf("new source's point query scanned %d tuples, want <= 1", rows.Scanned())
	}
}
