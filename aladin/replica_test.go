package aladin

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
)

// warehouseFingerprint summarizes the state a replica must converge to:
// sources, per-relation tuple counts, link/removed counts, and the full
// ordered accession column (so row-level divergence shows, not just
// counts).
func warehouseFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	ctx := context.Background()
	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sources=%d links=%d removed=%d\n", st.Repo.Sources, st.Repo.Links, st.Repo.RemovedLinks)
	wh := db.sys.WarehouseSnapshot()
	for _, n := range wh.SortedNames() {
		fmt.Fprintf(&b, "rel %s: %d\n", n, len(wh.Relation(n).Tuples))
	}
	res, err := db.Query(ctx, "SELECT accession FROM swissprot_protein ORDER BY accession")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%s\n", row[0].AsString())
	}
	return b.String()
}

// waitCaughtUp polls until the replica has applied the primary's
// current sequence.
func waitCaughtUp(t *testing.T, primary, replica *DB) {
	t.Helper()
	want := primary.sys.SnapshotSeq()
	deadline := time.Now().Add(15 * time.Second)
	for replica.sys.SnapshotSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, primary at %d (state %+v)",
				replica.sys.SnapshotSeq(), want, replica.replicationStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func openReplicaOf(t *testing.T, url, path string, extra ...Option) *DB {
	t.Helper()
	opts := append([]Option{WithOntologySources("go"), WithDataDir(path), WithReplicaOf(url)}, extra...)
	db, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestReplicaConvergence is the tentpole acceptance test: a replica
// bootstrapped over HTTP converges to the primary's exact state, serves
// indexed reads, pins cursors to a snapshot, keeps converging while the
// primary mutates, and rejects every write.
func TestReplicaConvergence(t *testing.T) {
	ctx := context.Background()
	primary := openDurableWith(t, t.TempDir(), nil, "swissprot", "pdb")
	defer primary.Close()
	srv := httptest.NewServer(primary.ReplHandler())
	defer srv.Close()

	replica := openReplicaOf(t, srv.URL, t.TempDir())
	defer replica.Close()
	waitCaughtUp(t, primary, replica)

	if got, want := warehouseFingerprint(t, replica), warehouseFingerprint(t, primary); got != want {
		t.Fatalf("replica state diverges from primary:\n--- replica\n%s--- primary\n%s", got, want)
	}

	// The replica rebuilt the primary's hash indexes: an accession point
	// query scans exactly one tuple.
	acc := firstAccession(t, replica)
	rows, err := replica.QueryRows(ctx, fmt.Sprintf("SELECT * FROM swissprot_protein WHERE accession = '%s'", acc))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 || rows.Scanned() != 1 {
		t.Fatalf("replica point query: rows=%d scanned=%d, want 1/1", n, rows.Scanned())
	}
	// Reads carry the snapshot they observed.
	sid := rows.SnapshotID()
	rows.Close()
	if sid.Seq != replica.sys.SnapshotSeq() || sid.String() == "" {
		t.Fatalf("rows snapshot = %+v, applied seq %d", sid, replica.sys.SnapshotSeq())
	}

	// Every mutation is rejected with ErrReadOnlyReplica naming the
	// primary; the warehouse is owned by the stream.
	corpus := testCorpus()
	if _, err := replica.AddSource(ctx, corpus.Source("go")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("AddSource on replica = %v, want ErrReadOnlyReplica", err)
	}
	if _, err := replica.Exec(ctx, "DELETE FROM swissprot_protein WHERE 1 = 1"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Exec on replica = %v, want ErrReadOnlyReplica", err)
	}
	if _, err := replica.Reanalyze(ctx, "swissprot"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Reanalyze on replica = %v, want ErrReadOnlyReplica", err)
	}
	if countProteins(t, replica) != countProteins(t, primary) {
		t.Fatal("rejected writes must not touch the replica's state")
	}

	// Writes on the primary stream across; the replica converges again.
	if _, err := primary.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, replica)
	if got, want := warehouseFingerprint(t, replica), warehouseFingerprint(t, primary); got != want {
		t.Fatalf("replica diverges after streamed DML:\n--- replica\n%s--- primary\n%s", got, want)
	}

	st, err := replica.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r := st.Replication
	if r.Role != "replica" || r.State != ReplStateStreaming || r.Lag != 0 ||
		r.Primary != strings.TrimRight(srv.URL, "/") || r.BootstrapMode != "segments" {
		t.Fatalf("replication stats = %+v", r)
	}
	if pst, _ := primary.Stats(ctx); pst.Replication.Role != "primary" {
		t.Fatalf("primary role = %q", pst.Replication.Role)
	}
	if st.Snapshot.Seq != primary.sys.SnapshotSeq() {
		t.Fatalf("replica snapshot %v, primary seq %d", st.Snapshot, primary.sys.SnapshotSeq())
	}
}

// A restarted replica recovers from its own directory — local segments
// plus its own journaled copy of the stream — and fetches only the
// delta, reporting bootstrap mode "resume".
func TestReplicaResumesFromLocalState(t *testing.T) {
	ctx := context.Background()
	primary := openDurableWith(t, t.TempDir(), nil, "swissprot", "pdb")
	defer primary.Close()
	srv := httptest.NewServer(primary.ReplHandler())
	defer srv.Close()

	rdir := t.TempDir()
	replica := openReplicaOf(t, srv.URL, rdir)
	waitCaughtUp(t, primary, replica)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the replica is down.
	acc := firstAccession(t, primary)
	if _, err := primary.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil {
		t.Fatal(err)
	}

	re := openReplicaOf(t, srv.URL, rdir)
	defer re.Close()
	waitCaughtUp(t, primary, re)
	st, err := re.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication.BootstrapMode != "resume" {
		t.Fatalf("bootstrap mode = %q, want resume (full re-download instead of delta)", st.Replication.BootstrapMode)
	}
	if got, want := warehouseFingerprint(t, re), warehouseFingerprint(t, primary); got != want {
		t.Fatalf("resumed replica diverges:\n--- replica\n%s--- primary\n%s", got, want)
	}
}

// A replica that fell behind the primary's checkpoint horizon while
// down cannot stream the delta (it was trimmed); reopening wipes the
// marker-guarded directory and re-bootstraps from segments.
func TestReplicaRebootstrapsPastTrimmedWAL(t *testing.T) {
	ctx := context.Background()
	primary := openDurableWith(t, t.TempDir(), nil, "swissprot")
	defer primary.Close()
	srv := httptest.NewServer(primary.ReplHandler())
	defer srv.Close()

	rdir := t.TempDir()
	replica := openReplicaOf(t, srv.URL, rdir)
	waitCaughtUp(t, primary, replica)
	replica.Close()

	// While the replica is down the primary integrates another source
	// and checkpoints, trimming the WAL records the replica would need.
	corpus := testCorpus()
	if _, err := primary.AddSource(ctx, corpus.Source("pdb")); err != nil {
		t.Fatal(err)
	}
	if err := primary.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	re := openReplicaOf(t, srv.URL, rdir)
	defer re.Close()
	waitCaughtUp(t, primary, re)
	st, err := re.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication.BootstrapMode != "segments" {
		t.Fatalf("bootstrap mode = %q, want segments (stale dir must be re-bootstrapped)", st.Replication.BootstrapMode)
	}
	if got, want := warehouseFingerprint(t, re), warehouseFingerprint(t, primary); got != want {
		t.Fatalf("re-bootstrapped replica diverges:\n--- replica\n%s--- primary\n%s", got, want)
	}
}

// A data directory holding state but no REPLICA marker is somebody's
// primary; WithReplicaOf must refuse to touch it rather than wipe it.
func TestReplicaRefusesUnmarkedDirectory(t *testing.T) {
	dir := t.TempDir()
	db := openDurableWith(t, dir, nil, "swissprot")
	db.Close()

	srv := httptest.NewServer(nil)
	defer srv.Close()
	_, err := Open(WithDataDir(dir), WithReplicaOf(srv.URL))
	if err == nil || !strings.Contains(err.Error(), repl.MarkerName) {
		t.Fatalf("open over an unmarked primary directory = %v, want marker refusal", err)
	}
	// And it must not have destroyed anything: the primary still opens.
	re, err := Open(WithOntologySources("go"), WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if countProteins(t, re) == 0 {
		t.Fatal("refused open still damaged the primary's data")
	}
}

func TestReplicaRequiresDataDir(t *testing.T) {
	if _, err := Open(WithReplicaOf("http://localhost:1")); err == nil {
		t.Fatal("WithReplicaOf without WithDataDir should fail")
	}
}

// The replica journals the stream into its own WAL and honors local
// checkpoint thresholds, so a long stream folds into local segments.
func TestReplicaLocalCheckpoints(t *testing.T) {
	ctx := context.Background()
	primary := openDurableWith(t, t.TempDir(), nil, "swissprot", "pdb")
	defer primary.Close()
	srv := httptest.NewServer(primary.ReplHandler())
	defer srv.Close()

	rdir := t.TempDir()
	replica := openReplicaOf(t, srv.URL, rdir, WithCheckpointEvery(2))
	defer replica.Close()
	waitCaughtUp(t, primary, replica)

	accs, err := primary.Query(ctx, "SELECT accession FROM swissprot_protein ORDER BY accession")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4 && i < len(accs.Rows); i++ {
		if _, err := primary.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", accs.Rows[i][0].AsString())); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, primary, replica)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := replica.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Durability.Gen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never checkpointed locally: %+v", st.Durability)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The local directory carries segments now, not just a WAL copy.
	entries, err := os.ReadDir(rdir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && filepath.Ext(e.Name()) == ".seg" {
			segs++
		}
	}
	if segs == 0 {
		t.Fatal("no local segment files after replica checkpoint")
	}
}
