package aladin

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// openDurableWith opens a durable DB on path and integrates the named
// corpus sources.
func openDurableWith(t *testing.T, path string, extra []Option, names ...string) *DB {
	t.Helper()
	corpus := testCorpus()
	opts := append([]Option{WithOntologySources("go"), WithDataDir(path)}, extra...)
	db, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range names {
		if _, err := db.AddSource(ctx, corpus.Source(n)); err != nil {
			t.Fatalf("AddSource(%s): %v", n, err)
		}
	}
	return db
}

func firstAccession(t *testing.T, db *DB) string {
	t.Helper()
	res, err := db.Query(context.Background(), "SELECT accession FROM swissprot_protein ORDER BY accession LIMIT 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("accession query: %v (%d rows)", err, len(res.Rows))
	}
	return res.Rows[0][0].AsString()
}

func countProteins(t *testing.T, db *DB) int64 {
	t.Helper()
	res, err := db.Query(context.Background(), "SELECT COUNT(*) FROM swissprot_protein")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	return n
}

// TestDurableRecoverOnOpen: a durable database's full mutation history —
// integrations, DML, link feedback — survives close and reopen, with no
// explicit checkpoint ever taken (pure WAL replay).
func TestDurableRecoverOnOpen(t *testing.T) {
	path := t.TempDir()
	ctx := context.Background()
	db := openDurableWith(t, path, nil, "swissprot", "pdb")

	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durability.Enabled || st.Durability.WALRecords != 2 || st.Durability.Gen != 0 {
		t.Fatalf("durability stats = %+v", st.Durability)
	}

	var victim Link
	for _, ref := range mustObjects(t, db, "pdb")[:4] {
		v, err := db.Browse(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Linked) > 0 {
			victim = v.Linked[0]
			break
		}
	}
	if victim.From.Accession != "" {
		if ok, err := db.RemoveLinkFeedback(ctx, victim); err != nil || !ok {
			t.Fatalf("RemoveLinkFeedback: ok=%v err=%v", ok, err)
		}
	}
	// Delete a protein that is not an endpoint of the removed link, so
	// both journaled mutations stay independently checkable after reopen.
	accs, err := db.Query(ctx, "SELECT accession FROM swissprot_protein ORDER BY accession")
	if err != nil {
		t.Fatal(err)
	}
	var acc string
	for _, row := range accs.Rows {
		if a := row[0].AsString(); a != victim.From.Accession && a != victim.To.Accession {
			acc = a
			break
		}
	}
	res, err := db.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc))
	if err != nil || res.Affected != 1 {
		t.Fatalf("Exec: affected=%d err=%v", res.Affected, err)
	}
	want, _ := db.Stats(ctx)
	tuples := countProteins(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithOntologySources("go"), WithDataDir(path))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Repo.Sources != want.Repo.Sources || got.Repo.Links != want.Repo.Links {
		t.Errorf("recovered repo stats %+v != %+v", got.Repo, want.Repo)
	}
	if n := countProteins(t, re); n != tuples {
		t.Errorf("recovered protein count = %d, want %d", n, tuples)
	}
	if res, err := re.Query(ctx, fmt.Sprintf("SELECT * FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil || len(res.Rows) != 0 {
		t.Errorf("journaled DELETE lost on recovery: %d rows, err=%v", len(res.Rows), err)
	}
	if victim.From.Accession != "" {
		v, err := re.Browse(ctx, victim.From)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range v.Linked {
			if l.From == victim.From && l.To == victim.To && l.Type == victim.Type {
				t.Error("removed link resurrected by recovery")
			}
		}
	}
}

// TestDurableCheckpointEvery: with WithCheckpointEvery(1) every mutation
// triggers an automatic checkpoint, so a reopen replays nothing.
func TestDurableCheckpointEvery(t *testing.T) {
	path := t.TempDir()
	ctx := context.Background()
	db := openDurableWith(t, path, []Option{WithCheckpointEvery(1)}, "swissprot")
	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability.Gen == 0 || st.Durability.WALRecords != 0 || st.Durability.DirtySources != 0 {
		t.Errorf("auto-checkpoint did not run: %+v", st.Durability)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WithOntologySources("go"), WithDataDir(path))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st, err = re.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability.WALRecords != 0 || st.Durability.Sources != 1 {
		t.Errorf("reopen after auto-checkpoint: %+v", st.Durability)
	}
}

// TestDurableExplicitCheckpoint: DB.Checkpoint folds the WAL into
// segments on demand and is a cheap no-op when nothing is dirty.
func TestDurableExplicitCheckpoint(t *testing.T) {
	path := t.TempDir()
	ctx := context.Background()
	db := openDurableWith(t, path, nil, "swissprot", "pdb")
	defer db.Close()
	if err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	st, _ := db.Stats(ctx)
	if st.Durability.Gen != 1 || st.Durability.WALRecords != 0 || st.Durability.Sources != 2 {
		t.Errorf("post-checkpoint stats = %+v", st.Durability)
	}
	if err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if st, _ := db.Stats(ctx); st.Durability.Gen != 2 {
		t.Errorf("second checkpoint gen = %d", st.Durability.Gen)
	}
}

// TestDurableSnapshotImport: WithSnapshot + WithDataDir imports the
// legacy single-file format into a fresh directory (and only a fresh
// one), checkpointing it immediately.
func TestDurableSnapshotImport(t *testing.T) {
	ctx := context.Background()
	src := openWith(t, testCorpus(), "swissprot", "pdb")
	snap, err := src.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Stats(ctx)
	src.Close()

	path := t.TempDir()
	db, err := Open(WithOntologySources("go"), WithDataDir(path), WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := db.Stats(ctx)
	if st.Durability.Gen == 0 || st.Durability.Sources != 2 {
		t.Errorf("import did not checkpoint: %+v", st.Durability)
	}
	if st.Repo.Sources != want.Repo.Sources || st.Repo.Links != want.Repo.Links {
		t.Errorf("imported stats %+v != %+v", st.Repo, want.Repo)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Importing into the now-populated directory must be refused.
	if _, err := Open(WithOntologySources("go"), WithDataDir(path), WithSnapshot(snap)); err == nil ||
		!strings.Contains(err.Error(), "fresh directory") {
		t.Errorf("import into populated directory = %v, want refusal", err)
	}

	// A plain reopen recovers the imported state.
	re, err := Open(WithOntologySources("go"), WithDataDir(path))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st, _ := re.Stats(ctx); st.Repo.Sources != want.Repo.Sources {
		t.Errorf("recovered imported sources = %d, want %d", st.Repo.Sources, want.Repo.Sources)
	}
}

// TestDurableOptionValidation covers the new options' error paths and
// that Exec still works (in-memory) without a data directory.
func TestDurableOptionValidation(t *testing.T) {
	if _, err := Open(WithDataDir("")); err == nil {
		t.Error("WithDataDir(\"\") should fail")
	}
	if _, err := Open(WithCheckpointEvery(0)); err == nil {
		t.Error("WithCheckpointEvery(0) should fail")
	}

	db := openWith(t, testCorpus(), "swissprot")
	defer db.Close()
	ctx := context.Background()
	st, _ := db.Stats(ctx)
	if st.Durability.Enabled {
		t.Error("in-memory DB reports durability enabled")
	}
	if err := db.Checkpoint(ctx); err == nil {
		t.Error("Checkpoint without a data directory should fail")
	}
	acc := firstAccession(t, db)
	if res, err := db.Exec(ctx, fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil || res.Affected != 1 {
		t.Errorf("in-memory Exec: %v", err)
	}
	if _, err := db.Exec(ctx, "SELECT 1"); err == nil {
		t.Error("Exec(SELECT) should be rejected")
	}
}
