package aladin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flatfile"
	"repro/internal/store"
)

// config is the resolved Open configuration.
type config struct {
	core            core.Options
	snapshot        *store.Snapshot
	planCache       int
	dataDir         string
	checkpointEvery int
	replicaOf       string
	live            []liveSpec
	err             error
}

// Option configures Open.
type Option func(*config)

// WithWorkers bounds the worker pool parallelizing the pipeline's inner
// loops (profiling, IND checks, link discovery, duplicate scoring) and
// the morsel-parallel execution of eligible queries (see ExplainAnalyze's
// Gather operator). 0 means all CPUs; 1 forces serial execution. Results
// are identical for any worker count.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.err = fmt.Errorf("aladin: negative worker count %d", n)
			return
		}
		c.core.Workers = n
	}
}

// WithOntologySources names sources whose shared terms yield derived
// ontology links (§4.4), e.g. "go".
func WithOntologySources(names ...string) Option {
	return func(c *config) {
		c.core.OntologySources = append(c.core.OntologySources, names...)
	}
}

// WithChangeThreshold sets the §6.2 re-analysis threshold as a fraction
// of changed tuples (default 0.1).
func WithChangeThreshold(frac float64) Option {
	return func(c *config) {
		if frac <= 0 || frac > 1 {
			c.err = fmt.Errorf("aladin: change threshold %v outside (0, 1]", frac)
			return
		}
		c.core.ChangeThreshold = frac
	}
}

// WithoutSearchIndex skips search indexing; Search returns nothing.
// Useful for pipeline benchmarks and pure-SQL workloads.
func WithoutSearchIndex() Option {
	return func(c *config) { c.core.DisableSearchIndex = true }
}

// WithPlanCache keeps the n most recently used prepared query plans,
// keyed by SQL text, so repeated Query/QueryRows calls skip parsing and
// validation. Plans bind to warehouse data only when opened, so a cached
// plan stays correct across later AddSource commits. n must be positive;
// without this option no plans are cached.
func WithPlanCache(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.err = fmt.Errorf("aladin: plan cache size %d outside [1, ∞)", n)
			return
		}
		c.planCache = n
	}
}

// WithSnapshot restores a previously saved warehouse during Open. It is
// the import/export format: combined with WithDataDir, the snapshot
// seeds a FRESH data directory (Open fails if the directory already
// holds data) and is checkpointed into it before Open returns.
func WithSnapshot(snap *Snapshot) Option {
	return func(c *config) { c.snapshot = snap }
}

// WithDataDir makes the database durable: every acknowledged mutation —
// AddSource, Exec, RemoveLinkFeedback — is journaled to a write-ahead
// log under path before it is acknowledged, and checkpoints fold the
// log into per-source segments. Open recovers whatever state the
// directory holds: the last checkpoint plus the journaled tail, exactly
// the acknowledged mutations, even after a crash.
func WithDataDir(path string) Option {
	return func(c *config) {
		if path == "" {
			c.err = fmt.Errorf("aladin: empty data directory path")
			return
		}
		c.dataDir = path
	}
}

// WithCheckpointEvery checkpoints automatically once n mutations have
// accumulated in the write-ahead log (checked after each mutating call).
// Without this option — or without WithDataDir — checkpoints run only
// when Checkpoint is called. n must be positive.
func WithCheckpointEvery(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.err = fmt.Errorf("aladin: checkpoint threshold %d outside [1, ∞)", n)
			return
		}
		c.checkpointEvery = n
	}
}

// WithReplicaOf opens the database as a read-only replica of the
// primary aladind at the given base URL (e.g. "http://10.0.0.1:8317").
// Requires WithDataDir: the replica bootstraps the primary's checkpoint
// segments into the directory (or resumes from its own previous state
// when possible), then streams and applies the primary's write-ahead
// log continuously until Close. All read methods serve normally over
// the replicated warehouse; every mutation returns ErrReadOnlyReplica.
// Replication state — lag, last sync, bootstrap mode — is reported by
// Stats().Replication.
//
// The data directory is owned by this replica relationship: it carries
// a REPLICA marker, and a directory holding data WITHOUT the marker is
// never wiped (Open fails rather than silently converting a primary's
// directory). WithCheckpointEvery applies locally, so a restarted
// replica recovers from its own segments and fetches only the delta.
func WithReplicaOf(primaryURL string) Option {
	return func(c *config) {
		if primaryURL == "" {
			c.err = fmt.Errorf("aladin: empty primary URL")
			return
		}
		c.replicaOf = primaryURL
	}
}

// WithLiveSource tails the flatfile at path into the named source for
// the lifetime of the DB: existing content streams in immediately, and
// records appended to the file afterwards are ingested as they arrive
// (batched per WithBatchRecords default). The tail stops at Close, which
// waits for the final partial batch to commit. The format must be
// streamable (flatfile.Streamable); incompatible with WithReplicaOf.
// Tail state is reported by Stats().Ingest (LiveSources, LastError).
func WithLiveSource(name, format, path string) Option {
	return func(c *config) {
		if name == "" || path == "" {
			c.err = fmt.Errorf("aladin: live source needs a name and a path")
			return
		}
		if !flatfile.Streamable(format) {
			c.err = fmt.Errorf("aladin: live source %q: format %q not streamable", name, format)
			return
		}
		c.live = append(c.live, liveSpec{name: name, format: format, path: path})
	}
}

// WithCoreOptions replaces the full pipeline configuration — the escape
// hatch for tuning thresholds of individual discovery channels. Options
// set by other With* calls before this one are overwritten.
func WithCoreOptions(o core.Options) Option {
	return func(c *config) { c.core = o }
}
