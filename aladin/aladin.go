// Package aladin is the public, concurrency-safe entry point to the
// ALADIN system (conf_cidr_LeserN05): a warehouse of life-science data
// sources integrated by the five-step almost-automatic pipeline (§3) and
// served through the three access modes of §4.6 — browsing the object
// web, ranked full-text search, and SQL over the integrated warehouse.
//
// Open a database, integrate imported sources, and query:
//
//	db, err := aladin.Open(aladin.WithOntologySources("go"))
//	if err != nil { ... }
//	report, err := db.AddSource(ctx, source)       // *rel.Database, e.g. from package flatfile
//	rows, err := db.QueryRows(ctx, "SELECT ... FROM swissprot_protein")  // streaming cursor
//	res, err := db.Query(ctx, "SELECT ... FROM swissprot_protein")       // materialized
//	hits, err := db.Search(ctx, "hemoglobin", aladin.SearchFilter{}, 10)
//	view, err := db.Browse(ctx, aladin.ObjectRef{Source: "swissprot", Relation: "protein", Accession: "P10000"})
//
// Every method takes a context. The long-running mutations — AddSource
// and Reanalyze — honor cancellation throughout the pipeline: a
// canceled AddSource aborts promptly and leaves the database exactly as
// it was. Read methods check the context on entry and then run to
// completion (they are index lookups and scans, not multi-second
// pipelines); a caller's deadline bounds when a late result is
// discarded, not the work of a read already in flight. Failures are
// reported through typed sentinel errors (ErrUnknownSource, ErrBadQuery,
// ErrCanceled, ...) that callers test with errors.Is.
//
// # Concurrency
//
// A DB is safe for arbitrary concurrent use. Reads (Query, QueryRows,
// Search, Browse, Objects, Related, Crawl, Stats, Sources, Conflicts,
// Snapshot) run concurrently with each other and — by design — with the
// expensive compute of an in-flight AddSource: the pipeline's steps 2–5
// run against a snapshot of the current state, and only the final
// commit, a cheap splice of precomputed artifacts, takes the write lock.
// Integrations themselves are serialized. A QueryRows cursor goes one
// step further: it iterates an immutable warehouse snapshot without any
// lock, so even a commit landing mid-iteration never blocks on — or is
// blocked by — an open cursor; the cursor keeps seeing the pre-add state.
package aladin

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dup"
	"repro/internal/metadata"
	"repro/internal/objectweb"
	"repro/internal/parallel"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/sqlx"
	"repro/internal/store"
)

// Re-exported types: the public API speaks these vocabulary types so
// callers never import internal packages directly.
type (
	// ObjectRef identifies one primary object (source, relation, accession).
	ObjectRef = metadata.ObjectRef
	// Link is one discovered connection between objects.
	Link = metadata.Link
	// ObjectView is the browse view of one object.
	ObjectView = objectweb.ObjectView
	// ScoredRef is one ranked related object.
	ScoredRef = objectweb.ScoredRef
	// WebStats reports object-web connectivity.
	WebStats = objectweb.WebStats
	// RepoStats reports link-repository statistics.
	RepoStats = metadata.Stats
	// SearchFilter restricts a search to data partitions (§4.6).
	SearchFilter = search.Filter
	// SearchResult is one ranked search hit.
	SearchResult = search.Result
	// QueryResult is a SQL result set.
	QueryResult = sqlx.Result
	// Conflict is one field-level disagreement between duplicates.
	Conflict = dup.Conflict
	// Report summarizes one AddSource or Reanalyze run.
	Report = core.AddReport
	// Source is one imported data source (step 1 of the pipeline — "the
	// one point where ALADIN does require human work").
	Source = rel.Database
	// Snapshot is a persistable image of the integrated warehouse.
	Snapshot = store.Snapshot
)

// SnapshotID names one exact warehouse state: the completed checkpoint
// generation (0 without a data directory) and the global sequence of
// the last applied mutation. Every read observes exactly one snapshot;
// the pair is what pins pagination cursors, tags HTTP responses
// (ETag), and measures replication lag — a replica has converged with
// its primary when their Seq values match.
type SnapshotID struct {
	Gen uint64
	Seq uint64
}

// String renders the ID in its wire form, e.g. "g3-s17".
func (s SnapshotID) String() string { return fmt.Sprintf("g%d-s%d", s.Gen, s.Seq) }

// Stats aggregates the observable state of a DB.
type Stats struct {
	// Repo summarizes the link repository.
	Repo RepoStats
	// Web summarizes object-web connectivity.
	Web WebStats
	// IndexedDocuments is the number of values in the search index.
	IndexedDocuments int
	// Snapshot identifies the warehouse state this Stats observed:
	// checkpoint generation + last-applied mutation sequence.
	Snapshot SnapshotID
	// Durability reports WAL and checkpoint state (Enabled=false without
	// WithDataDir).
	Durability DurabilityStats
	// Replication reports the database's role and, on a replica, its
	// streaming state and lag behind the primary.
	Replication ReplicationStats
	// Ingest aggregates streaming-ingestion activity since Open
	// (IngestSource runs, live tails, per-stage wall times).
	Ingest IngestStats
}

// SourceInfo describes one integrated source.
type SourceInfo struct {
	Name string
	// Primary and Accession name the discovered primary relation and its
	// accession attribute (§4.2).
	Primary   string
	Accession string
	// Tuples is the source size at analysis time.
	Tuples int
}

// DB is one open ALADIN database. It wraps the integration pipeline and
// the three access modes behind a reader/writer discipline: any number
// of readers run concurrently, and an in-flight AddSource blocks them
// only during its short commit window.
type DB struct {
	// mu guards the reader-visible state of sys: readers hold RLock,
	// AddSource's commit and the other mutating calls hold Lock.
	mu sync.RWMutex
	// addMu serializes integrations; the pipeline's compute phase runs
	// under it WITHOUT holding mu, concurrently with readers.
	addMu  sync.Mutex
	sys    *core.System
	closed bool
	// plans caches prepared query plans by SQL text (nil = no cache);
	// it has its own lock and is never touched under mu.
	plans *planCache
	// workers is the query parallelism degree (resolved from WithWorkers;
	// immutable after Open). Eligible scans run as parallel morsels.
	workers int

	// dir is the durable data directory (nil without WithDataDir).
	// chkMu serializes checkpoints, which otherwise run outside mu;
	// chkErrMu guards only lastChkErr so Stats never waits on a
	// checkpoint in flight.
	dir             *store.Dir
	checkpointEvery int
	chkMu           sync.Mutex
	chkErrMu        sync.Mutex
	lastChkErr      error

	// repl is the replica machinery (nil unless opened WithReplicaOf):
	// the streaming client goroutine applying the primary's WAL, plus
	// its observable state (replica.go).
	repl *replicaState

	// ingestMu guards ingestTotals, the lifetime streaming-ingestion
	// counters reported by Stats().Ingest (ingest.go). live is the
	// live-tail machinery (nil unless opened WithLiveSource).
	ingestMu     sync.Mutex
	ingestTotals IngestStats
	live         *liveState
}

// Open creates a database, configured by functional options. With
// WithSnapshot the saved warehouse is restored before Open returns.
func Open(opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	var plans *planCache
	if cfg.planCache > 0 {
		plans = newPlanCache(cfg.planCache)
	}
	if cfg.replicaOf != "" {
		if len(cfg.live) > 0 {
			return nil, errors.New("aladin: a replica is read-only; WithLiveSource needs a primary")
		}
		return openReplica(&cfg, plans)
	}
	var d *DB
	switch {
	case cfg.dataDir != "":
		var err error
		d, err = openDurable(&cfg, plans)
		if err != nil {
			return nil, err
		}
	case cfg.snapshot != nil:
		sys, err := core.Load(cfg.core, cfg.snapshot)
		if err != nil {
			return nil, fmt.Errorf("aladin: restoring snapshot: %w", err)
		}
		d = &DB{sys: sys, plans: plans, workers: parallel.Workers(cfg.core.Workers)}
	default:
		d = &DB{sys: core.New(cfg.core), plans: plans, workers: parallel.Workers(cfg.core.Workers)}
	}
	if len(cfg.live) > 0 {
		if err := d.startLive(cfg.live); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// Close marks the database closed and, on a durable database, flushes
// and closes the write-ahead log; subsequent calls return ErrClosed.
// Close never interrupts an in-flight call — it waits for the write lock.
func (d *DB) Close() error {
	// A replica's streaming goroutine applies records under the write
	// lock; stop and drain it before taking that lock ourselves.
	if d.repl != nil {
		d.repl.stop()
	}
	// Likewise the live-tail goroutines: their final batches commit
	// under the write lock, so drain them before we hold it.
	if d.live != nil {
		d.live.stop()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.dir != nil {
		return d.dir.Close()
	}
	return nil
}

// checkOpenRLocked reports ErrClosed; callers hold at least RLock.
func (d *DB) checkOpenRLocked() error {
	if d.closed {
		return ErrClosed
	}
	return nil
}

// AddSource runs the five-step integration pipeline (§3, Figure 2) for
// one imported source. The expensive steps — profiling, structural
// discovery, link discovery against every integrated source, duplicate
// detection — compute against a snapshot of the current state while
// readers keep running; the result is then committed in one short
// write-locked step. On any failure, cancellation, or panic in the
// pipeline the database is left exactly as it was before the call.
//
// Errors: ErrSourceExists, ErrNoPrimary, ErrCanceled (wrapping the
// context error), ErrClosed.
func (d *DB) AddSource(ctx context.Context, src *Source) (*Report, error) {
	if src == nil {
		return nil, errors.New("aladin: nil source")
	}
	if err := d.replicaGuard(); err != nil {
		return nil, err
	}
	d.addMu.Lock()
	defer d.addMu.Unlock()

	d.mu.RLock()
	err := d.checkOpenRLocked()
	exists := err == nil && d.sys.Repo.Source(src.Name) != nil
	d.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if exists {
		return nil, fmt.Errorf("%w: %s", ErrSourceExists, src.Name)
	}

	// Compute phase: no lock on mu. Readers proceed; addMu guarantees no
	// concurrent mutation of the pipeline-internal state this touches.
	p, err := d.prepare(ctx, src)
	if err != nil {
		return nil, err
	}

	d.mu.Lock()
	if d.closed {
		d.sys.Abort(p)
		d.mu.Unlock()
		return nil, ErrClosed
	}
	rep, err := d.commit(p)
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	d.maybeCheckpoint()
	return rep, nil
}

// commit publishes a prepared addition under the held write lock. A
// panic here would leave reader-visible state half-published with no way
// to unwind it, so the database fails stop: it is marked closed and the
// panic surfaces as ErrInternal instead of serving inconsistent data.
func (d *DB) commit(p *core.PendingAdd) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.closed = true
			rep, err = nil, fmt.Errorf("%w: commit of %s panicked, database closed: %v", ErrInternal, p.Source(), r)
		}
	}()
	rep, err = d.sys.CommitAdd(p)
	if err != nil {
		return nil, fmt.Errorf("aladin: commit: %w", err)
	}
	return rep, nil
}

// prepare runs the compute phase, converting pipeline panics (already
// re-raised on this goroutine by internal/parallel, already unwound by
// core) into errors so one bad record cannot take down a server.
func (d *DB) prepare(ctx context.Context, src *Source) (p *core.PendingAdd, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("%w: AddSource(%s): %v", ErrInternal, src.Name, r)
		}
	}()
	p, err = d.sys.PrepareAdd(ctx, src)
	if err != nil {
		return nil, mapPipelineErr(err)
	}
	return p, nil
}

// Query runs a SQL SELECT over the integrated warehouse and returns the
// fully materialized result — a convenience wrapper collecting QueryRows;
// prefer QueryRows for large or paginated results. Relations are
// addressable as "<source>_<relation>", e.g. "swissprot_protein".
// Errors: ErrBadQuery (wrapping the parse or execution error),
// ErrCanceled, ErrClosed.
func (d *DB) Query(ctx context.Context, sql string) (*QueryResult, error) {
	rows, err := d.QueryRows(ctx, sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &QueryResult{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.row)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Search runs ranked full-text search (§4.6), grouped per object. The
// filter restricts to vertical (columns) and horizontal (sources,
// primary-only) partitions; limit <= 0 returns everything.
func (d *DB) Search(ctx context.Context, query string, f SearchFilter, limit int) ([]SearchResult, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	return d.sys.Search(query, f, limit), nil
}

// Browse returns the object-web view of one object: its fields,
// dependent annotations, same-relation neighbors, and links (§4.6).
// Errors: ErrUnknownSource, ErrUnknownObject, ErrCanceled, ErrClosed.
func (d *DB) Browse(ctx context.Context, ref ObjectRef) (*ObjectView, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	if d.sys.Repo.Source(ref.Source) == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, ref.Source)
	}
	v, err := d.sys.Browse(ref)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnknownObject, err)
	}
	return v, nil
}

// Objects lists a source's primary objects in accession order.
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) Objects(ctx context.Context, source string) ([]ObjectRef, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	if d.sys.Repo.Source(source) == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, source)
	}
	return d.sys.Objects(source), nil
}

// Related ranks objects connected to ref by the [BLM+04] path criterion,
// exploring paths up to maxLen edges (default 3 when <= 0).
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) Related(ctx context.Context, ref ObjectRef, maxLen, limit int) ([]ScoredRef, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	if d.sys.Repo.Source(ref.Source) == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, ref.Source)
	}
	return d.sys.Related(ref, maxLen, limit), nil
}

// Crawl walks the object web breadth-first from ref up to depth hops —
// the §1 "search engine can crawl the links" behaviour.
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) Crawl(ctx context.Context, ref ObjectRef, depth int) ([]ObjectRef, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	if d.sys.Repo.Source(ref.Source) == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, ref.Source)
	}
	return d.sys.Crawl(ref, depth), nil
}

// Conflicts reports field-level disagreements between two objects
// flagged as duplicates — "Conflicts are highlighted, and data lineage
// is shown" (§4.6). Errors: ErrUnknownObject, ErrCanceled, ErrClosed.
func (d *DB) Conflicts(ctx context.Context, a, b ObjectRef) ([]Conflict, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	cs, err := d.sys.Conflicts(a, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnknownObject, err)
	}
	return cs, nil
}

// Stats reports repository, object-web and search-index statistics.
func (d *DB) Stats(ctx context.Context) (Stats, error) {
	if err := ctxErr(ctx); err != nil {
		return Stats{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return Stats{}, err
	}
	gen, seq := d.sys.SnapshotID()
	return Stats{
		Repo:             d.sys.Repo.Stats(),
		Web:              d.sys.WebStats(),
		IndexedDocuments: d.sys.IndexedDocuments(),
		Snapshot:         SnapshotID{Gen: gen, Seq: seq},
		Durability:       d.durabilityStats(),
		Replication:      d.replicationStats(),
		Ingest:           d.ingestStats(),
	}, nil
}

// SnapshotID returns the identifier of the warehouse state a read
// issued right now would observe (see the SnapshotID type).
func (d *DB) SnapshotID(ctx context.Context) (SnapshotID, error) {
	if err := ctxErr(ctx); err != nil {
		return SnapshotID{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return SnapshotID{}, err
	}
	gen, seq := d.sys.SnapshotID()
	return SnapshotID{Gen: gen, Seq: seq}, nil
}

// Sources lists the integrated sources in integration order.
func (d *DB) Sources(ctx context.Context) ([]SourceInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	var out []SourceInfo
	for _, m := range d.sys.Repo.Sources() {
		out = append(out, sourceInfo(m))
	}
	return out, nil
}

// Source describes one integrated source.
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) Source(ctx context.Context, name string) (SourceInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return SourceInfo{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return SourceInfo{}, err
	}
	m := d.sys.Repo.Source(name)
	if m == nil {
		return SourceInfo{}, fmt.Errorf("%w: %s", ErrUnknownSource, name)
	}
	return sourceInfo(m), nil
}

func sourceInfo(m *metadata.SourceMeta) SourceInfo {
	info := SourceInfo{Name: m.Name, Tuples: m.TupleCount}
	if m.Structure != nil {
		info.Primary = m.Structure.Primary
		info.Accession = m.Structure.PrimaryAccession
	}
	return info
}

// Reanalyze re-runs structural and link discovery for one source after
// data changes, resetting its §6.2 change counter. Unlike AddSource,
// re-analysis holds the write lock for the whole run (it rewrites the
// source's discovered structure in place); it is expected to be rare.
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) Reanalyze(ctx context.Context, source string) (*Report, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.replicaGuard(); err != nil {
		return nil, err
	}
	d.addMu.Lock()
	defer d.addMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if d.sys.Repo.Source(source) == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, source)
	}
	rep, err := d.sys.ReanalyzeContext(ctx, source)
	if err != nil {
		return nil, mapPipelineErr(err)
	}
	return rep, nil
}

// RemoveLinkFeedback deletes a link the user flagged as wrong (§6.2) and
// prevents its rediscovery. It reports whether the link existed. On a
// durable database the feedback is journaled before it is acknowledged;
// an error means it was NOT recorded.
func (d *DB) RemoveLinkFeedback(ctx context.Context, l Link) (bool, error) {
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	if err := d.replicaGuard(); err != nil {
		return false, err
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, ErrClosed
	}
	ok, err := d.sys.RemoveLinkFeedback(l)
	d.mu.Unlock()
	if err != nil {
		return false, err
	}
	d.maybeCheckpoint()
	return ok, nil
}

// RecordChanges notes n changed tuples in a source and reports whether
// the §6.2 threshold policy now calls for re-analysis.
// Errors: ErrUnknownSource, ErrCanceled, ErrClosed.
func (d *DB) RecordChanges(ctx context.Context, source string, n int) (bool, error) {
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	if err := d.replicaGuard(); err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if d.sys.Repo.Source(source) == nil {
		return false, fmt.Errorf("%w: %s", ErrUnknownSource, source)
	}
	return d.sys.RecordChanges(source, n), nil
}

// Snapshot captures the integrated warehouse — source data, links, and
// user feedback — for persistence; restore with WithSnapshot.
func (d *DB) Snapshot(ctx context.Context) (*Snapshot, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpenRLocked(); err != nil {
		return nil, err
	}
	return d.sys.Snapshot(), nil
}

// Snippet extracts a short context window around the first query-term
// occurrence in a search result's text, for display in result lists.
// width is the approximate number of characters around the match
// (default 60).
func Snippet(r SearchResult, query string, width int) string {
	return search.Snippet(r, query, width)
}

// mapPipelineErr converts core pipeline errors to the package's typed
// sentinels.
func mapPipelineErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, core.ErrNoPrimary):
		return fmt.Errorf("%w: %w", ErrNoPrimary, err)
	case errors.Is(err, core.ErrSourceExists):
		return fmt.Errorf("%w: %w", ErrSourceExists, err)
	default:
		return err
	}
}

// ctxErr reports a typed cancellation error when ctx is already done.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}
