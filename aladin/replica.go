package aladin

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/repl"
	"repro/internal/store"
)

// This file is the replica side of replication (see internal/repl for
// the wire protocol). A DB opened WithReplicaOf serves the full read
// API over a warehouse it does not own: it bootstraps the primary's
// checkpoint into its local data directory, recovers from it exactly as
// after a crash, then streams the primary's WAL and applies each frame
// under the write lock — journaling the frame verbatim into its OWN
// WAL first, so a restart recovers locally and resumes streaming at the
// exact sequence it left off. Local checkpoints (WithCheckpointEvery)
// fold the stream into local segments, keeping restarts incremental.

// Replication states reported by ReplicationStats.State.
const (
	// ReplStateBootstrapping: downloading segments / catching up.
	ReplStateBootstrapping = "bootstrapping"
	// ReplStateStreaming: applying the primary's WAL tail continuously.
	ReplStateStreaming = "streaming"
	// ReplStateStale: the primary trimmed records this replica still
	// needs (it fell more than one checkpoint behind, or the primary's
	// directory was replaced). The replica keeps serving its last state;
	// restart it to re-bootstrap. Readiness probes fail in this state.
	ReplStateStale = "stale"
	// ReplStateError: the stream is down (primary unreachable, apply
	// failure); the replica keeps serving and keeps retrying.
	ReplStateError = "error"
)

// ReplicationStats reports a database's replication role and state.
type ReplicationStats struct {
	// Role is "primary" (durable, serves the replication API),
	// "replica", or "standalone" (no data directory).
	Role string
	// The remaining fields are replica-only.
	// Primary is the primary's base URL.
	Primary string
	// State is one of the ReplState constants.
	State string
	// AppliedSeq is the last mutation sequence applied locally;
	// PrimarySeq is the primary's sequence at the last successful poll.
	// Lag is PrimarySeq - AppliedSeq (0 when fully caught up).
	AppliedSeq uint64
	PrimarySeq uint64
	Lag        uint64
	// LastSync is when the last successful WAL poll completed.
	LastSync time.Time
	// LastError is the most recent stream failure ("" while healthy).
	LastError string
	// BootstrapMode is how this process obtained its initial state:
	// "segments" (full download) or "resume" (recovered its own
	// directory and streamed only the delta). BootstrapDuration is how
	// long that took, catch-up included.
	BootstrapMode     string
	BootstrapDuration time.Duration
}

// replicaState is the DB-internal replica machinery.
type replicaState struct {
	primary string
	client  *repl.Client
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu           sync.Mutex
	state        string
	primarySeq   uint64
	lastSync     time.Time
	lastErr      error
	bootMode     string
	bootDuration time.Duration
	stopOnce     sync.Once
}

func (rs *replicaState) stop() {
	rs.stopOnce.Do(func() {
		rs.cancel()
		rs.wg.Wait()
	})
}

func (rs *replicaState) observe(primarySeq uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.state = ReplStateStreaming
	rs.lastErr = nil
	if primarySeq > rs.primarySeq {
		rs.primarySeq = primarySeq
	}
	rs.lastSync = time.Now()
}

func (rs *replicaState) fail(state string, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.state = state
	rs.lastErr = err
}

// openReplica opens a read-only replica (WithReplicaOf).
func openReplica(cfg *config, plans *planCache) (*DB, error) {
	if cfg.dataDir == "" {
		return nil, errors.New("aladin: WithReplicaOf requires WithDataDir")
	}
	if cfg.snapshot != nil {
		return nil, errors.New("aladin: WithSnapshot cannot be combined with WithReplicaOf")
	}
	client, err := repl.NewClient(cfg.replicaOf, nil)
	if err != nil {
		return nil, err
	}
	loopCtx, cancel := context.WithCancel(context.Background())
	rs := &replicaState{primary: client.Primary, client: client, state: ReplStateBootstrapping, cancel: cancel}

	start := time.Now()
	ctx := context.Background()
	sys, mode, err := openReplicaDir(ctx, cfg, client)
	if err != nil {
		cancel()
		return nil, err
	}
	// The replication client journals the primary's frames verbatim;
	// the mutators applying them must not journal a second copy.
	sys.DisableJournal()

	db := &DB{
		sys: sys, plans: plans, dir: sysDir(sys), checkpointEvery: cfg.checkpointEvery,
		workers: parallel.Workers(cfg.core.Workers), repl: rs,
	}

	// Catch up to the primary's sequence as of now before returning, so
	// an opened replica starts at lag ≈ 0; the streaming goroutine then
	// keeps it there.
	m, err := client.Manifest(ctx)
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("aladin: replica catch-up: %w", err)
	}
	for sys.SnapshotSeq() < m.Seq {
		batch, err := client.WAL(ctx, sys.SnapshotSeq(), 0)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("aladin: replica catch-up: %w", err)
		}
		if err := db.applyBatch(batch); err != nil {
			db.Close()
			return nil, fmt.Errorf("aladin: replica catch-up: %w", err)
		}
		if len(batch.Frames) == 0 {
			break // primary trimmed nothing and has nothing more for us
		}
	}

	rs.mu.Lock()
	rs.state = ReplStateStreaming
	rs.bootMode = mode
	rs.bootDuration = time.Since(start)
	rs.primarySeq = m.Seq
	rs.lastSync = time.Now()
	rs.mu.Unlock()

	rs.wg.Add(1)
	go db.replicaLoop(loopCtx)
	return db, nil
}

// sysDir digs the store.Dir back out of a recovered system (Recover
// attached it); kept as a helper so openReplica reads linearly.
func sysDir(sys *core.System) *store.Dir { return sys.DurableDir() }

// openReplicaDir produces a recovered system for the replica: resuming
// from the local directory when its state is usable, otherwise wiping
// (marker-guarded) and bootstrapping the primary's segments.
func openReplicaDir(ctx context.Context, cfg *config, client *repl.Client) (*core.System, string, error) {
	path := cfg.dataDir
	if hasManifest(path) {
		if _, ok := repl.ReadMarker(path); !ok {
			return nil, "", fmt.Errorf("aladin: %s holds data but no %s marker; refusing to turn a primary's data directory into a replica", path, repl.MarkerName)
		}
		// Try to resume: recover the local state and check the primary
		// can still serve the delta (our seq has not fallen behind the
		// primary's last checkpoint).
		sys, usable := tryRecoverReplica(cfg, path)
		if usable {
			m, err := client.Manifest(ctx)
			if err != nil {
				return nil, "", fmt.Errorf("aladin: reaching primary %s: %w", client.Primary, err)
			}
			if sys.SnapshotSeq() >= m.RecordSeq {
				return sys, "resume", nil
			}
			// Fell behind the primary's checkpoint; the WAL delta is
			// trimmed. Fall through to a fresh bootstrap.
			sysDir(sys).Close()
		}
		if err := wipeDir(path); err != nil {
			return nil, "", fmt.Errorf("aladin: clearing stale replica directory: %w", err)
		}
	}
	// If the primary checkpoints while segments are downloading, a fetch
	// 404s (the file left the manifest); retry against the new manifest.
	var err error
	for attempt := 0; ; attempt++ {
		if _, err = client.Bootstrap(ctx, path); err == nil {
			break
		}
		if attempt == 2 {
			return nil, "", fmt.Errorf("aladin: bootstrapping from %s: %w", client.Primary, err)
		}
	}
	dir, err := store.OpenDir(path)
	if err != nil {
		return nil, "", fmt.Errorf("aladin: opening bootstrapped directory: %w", err)
	}
	sys, _, err := core.Recover(cfg.core, dir)
	if err != nil {
		dir.Close()
		return nil, "", fmt.Errorf("aladin: recovering bootstrapped state: %w", err)
	}
	return sys, "segments", nil
}

func hasManifest(path string) bool {
	_, err := os.Stat(filepath.Join(path, store.ManifestName))
	return err == nil
}

// tryRecoverReplica attempts a local recovery; any failure (gap,
// corruption, version mismatch) just means we re-bootstrap.
func tryRecoverReplica(cfg *config, path string) (*core.System, bool) {
	dir, err := store.OpenDir(path)
	if err != nil {
		return nil, false
	}
	sys, _, err := core.Recover(cfg.core, dir)
	if err != nil {
		dir.Close()
		return nil, false
	}
	return sys, true
}

// wipeDir clears every store artifact from a stale replica directory.
// Only called behind the REPLICA-marker check.
func wipeDir(path string) error {
	entries, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name() == repl.MarkerName {
			continue
		}
		if err := os.RemoveAll(filepath.Join(path, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// applyBatch journals and applies one WAL batch in sequence order,
// deduplicating frames at or below the locally applied sequence and
// refusing sequence gaps (the stream is dense by construction; a gap
// means a protocol violation, not data to skip).
func (d *DB) applyBatch(batch *repl.WALBatch) error {
	for _, f := range batch.Frames {
		applied := d.sys.SnapshotSeq()
		if f.Rec.Seq <= applied {
			continue
		}
		if f.Rec.Seq != applied+1 {
			return fmt.Errorf("aladin: replication stream gap: applied %d, next frame is %d", applied, f.Rec.Seq)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return ErrClosed
		}
		err := d.sys.ApplyReplicated(f.Raw, f.Rec)
		d.mu.Unlock()
		if err != nil {
			return err
		}
	}
	d.maybeCheckpoint()
	return nil
}

// replicaLoop is the streaming goroutine: long-poll the primary's WAL,
// apply what arrives, update lag; on failure keep serving reads and
// keep retrying.
func (d *DB) replicaLoop(ctx context.Context) {
	defer d.repl.wg.Done()
	backoff := time.Second
	for ctx.Err() == nil {
		batch, err := d.repl.client.WAL(ctx, d.sys.SnapshotSeq(), repl.DefaultWait)
		if err == nil {
			err = d.applyBatch(batch)
		}
		switch {
		case ctx.Err() != nil || errors.Is(err, ErrClosed):
			return
		case err == nil:
			d.repl.observe(batch.PrimarySeq)
			backoff = time.Second
			continue
		case errors.Is(err, repl.ErrTrimmed):
			// The primary checkpointed past us mid-stream. Serving the
			// last good snapshot is still correct (reads are eventually
			// consistent); catching up needs a re-bootstrap, i.e. a
			// restart. Flag it and stop streaming: readiness fails.
			d.repl.fail(ReplStateStale, err)
			return
		default:
			d.repl.fail(ReplStateError, err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
		}
	}
}

// replicaGuard rejects mutations on a replica.
func (d *DB) replicaGuard() error {
	if d.repl != nil {
		return fmt.Errorf("%w: writes go to the primary at %s", ErrReadOnlyReplica, d.repl.primary)
	}
	return nil
}

// replicationStats assembles Stats().Replication.
func (d *DB) replicationStats() ReplicationStats {
	if d.repl == nil {
		role := "standalone"
		if d.dir != nil {
			role = "primary"
		}
		return ReplicationStats{Role: role}
	}
	rs := d.repl
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := ReplicationStats{
		Role:              "replica",
		Primary:           rs.primary,
		State:             rs.state,
		AppliedSeq:        d.sys.SnapshotSeq(),
		PrimarySeq:        rs.primarySeq,
		LastSync:          rs.lastSync,
		BootstrapMode:     rs.bootMode,
		BootstrapDuration: rs.bootDuration,
	}
	if out.PrimarySeq > out.AppliedSeq {
		out.Lag = out.PrimarySeq - out.AppliedSeq
	}
	if rs.lastErr != nil {
		out.LastError = rs.lastErr.Error()
	}
	return out
}

// ReplHandler returns the replication API handler (/v1/repl/...) for a
// durable primary, or nil when this database cannot serve replication
// (no data directory, or itself a replica — chaining is not supported).
func (d *DB) ReplHandler() http.Handler {
	if d.dir == nil || d.repl != nil {
		return nil
	}
	return repl.NewServer(d.dir, d.sys.SnapshotSeq)
}
