package aladin

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metadata"
)

func testCorpus() *datagen.Corpus {
	return datagen.Generate(datagen.Config{Seed: 7, Proteins: 16})
}

func openWith(t *testing.T, corpus *datagen.Corpus, names ...string) *DB {
	t.Helper()
	db, err := Open(WithOntologySources("go"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range names {
		if _, err := db.AddSource(ctx, corpus.Source(n)); err != nil {
			t.Fatalf("AddSource(%s): %v", n, err)
		}
	}
	return db
}

// TestConcurrentServingDuringAddSource hammers every read access mode
// from many goroutines while AddSource integrates a new source, asserting
// (under -race) that no data race exists and that every reader observes
// one of exactly two consistent states: the pre-add snapshot or the
// post-add snapshot.
func TestConcurrentServingDuringAddSource(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot", "pdb")
	ctx := context.Background()

	before, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Repo.Sources != 2 {
		t.Fatalf("pre-add sources = %d, want 2", before.Repo.Sources)
	}
	objs, err := db.Objects(ctx, "swissprot")
	if err != nil || len(objs) == 0 {
		t.Fatalf("objects: %v (%d)", err, len(objs))
	}

	const readers = 8
	done := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0:
					res, err := db.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein")
					if err != nil {
						errCh <- fmt.Errorf("reader %d: query: %w", r, err)
						return
					}
					if n, _ := res.Rows[0][0].AsInt(); n != 16 {
						errCh <- fmt.Errorf("reader %d: count = %d, want 16", r, n)
						return
					}
				case 1:
					if _, err := db.Search(ctx, "hemoglobin kinase", SearchFilter{}, 5); err != nil {
						errCh <- fmt.Errorf("reader %d: search: %w", r, err)
						return
					}
				case 2:
					if _, err := db.Browse(ctx, objs[i%len(objs)]); err != nil {
						errCh <- fmt.Errorf("reader %d: browse: %w", r, err)
						return
					}
				case 3:
					st, err := db.Stats(ctx)
					if err != nil {
						errCh <- fmt.Errorf("reader %d: stats: %w", r, err)
						return
					}
					// Atomicity: the repo either has the pre-add source
					// count or the post-add one, never anything between.
					if st.Repo.Sources != 2 && st.Repo.Sources != 3 {
						errCh <- fmt.Errorf("reader %d: saw %d sources", r, st.Repo.Sources)
						return
					}
				}
			}
		}(r)
	}

	rep, err := db.AddSource(ctx, corpus.Source("pir"))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("AddSource under load: %v", err)
	}
	if rep.Structure == nil || rep.Structure.Primary == "" {
		t.Error("report missing discovered structure")
	}
	select {
	case rerr := <-errCh:
		t.Fatal(rerr)
	default:
	}
	after, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Repo.Sources != 3 {
		t.Errorf("post-add sources = %d, want 3", after.Repo.Sources)
	}
	if after.Repo.Links <= before.Repo.Links {
		t.Errorf("links did not grow: %d -> %d", before.Repo.Links, after.Repo.Links)
	}
}

// TestCancelAddSourceMidPipelineRestoresState cancels an AddSource while
// the pipeline is running (via a failpoint firing after link discovery)
// and asserts the database equals its pre-call state.
func TestCancelAddSourceMidPipelineRestoresState(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot")
	ctx := context.Background()

	wantStats, _ := db.Stats(ctx)
	wantSources, _ := db.Sources(ctx)
	wantLinks, err := db.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein")
	if err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"link-discovery", "duplicate-detection"} {
		cctx, cancel := context.WithCancel(context.Background())
		failAt := stage
		db.sys.SetFailpoint(func(s string) error {
			if s == failAt {
				cancel() // cancel mid-pipeline; the next ctx check aborts
			}
			return nil
		})
		_, err := db.AddSource(cctx, corpus.Source("pir"))
		db.sys.SetFailpoint(nil)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("stage %s: err = %v, want ErrCanceled", stage, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("stage %s: wrapped chain lost context.Canceled: %v", stage, err)
		}
		gotStats, _ := db.Stats(ctx)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Errorf("stage %s: stats changed: %+v -> %+v", stage, wantStats, gotStats)
		}
		gotSources, _ := db.Sources(ctx)
		if !reflect.DeepEqual(gotSources, wantSources) {
			t.Errorf("stage %s: sources changed: %v -> %v", stage, wantSources, gotSources)
		}
		gotLinks, err := db.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein")
		if err != nil || !reflect.DeepEqual(gotLinks.Rows, wantLinks.Rows) {
			t.Errorf("stage %s: warehouse changed (%v)", stage, err)
		}
	}

	// The canceled source must integrate cleanly afterwards.
	if _, err := db.AddSource(ctx, corpus.Source("pir")); err != nil {
		t.Fatalf("add after canceled attempts: %v", err)
	}
	st, _ := db.Stats(ctx)
	if st.Repo.Sources != 2 {
		t.Errorf("sources after re-add = %d, want 2", st.Repo.Sources)
	}
}

// TestPipelinePanicBecomesErrInternal injects a panic mid-pipeline and
// asserts it surfaces as ErrInternal with the state unwound.
func TestPipelinePanicBecomesErrInternal(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot")
	ctx := context.Background()

	db.sys.SetFailpoint(func(s string) error {
		if s == "duplicate-detection" {
			panic("injected pipeline panic")
		}
		return nil
	})
	_, err := db.AddSource(ctx, corpus.Source("pir"))
	db.sys.SetFailpoint(nil)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	st, _ := db.Stats(ctx)
	if st.Repo.Sources != 1 {
		t.Fatalf("panic left partial state: %d sources", st.Repo.Sources)
	}
	if _, err := db.AddSource(ctx, corpus.Source("pir")); err != nil {
		t.Fatalf("add after panic: %v", err)
	}
}

func TestTypedErrors(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot")
	ctx := context.Background()

	if _, err := db.AddSource(ctx, corpus.Source("swissprot")); !errors.Is(err, ErrSourceExists) {
		t.Errorf("double add: %v, want ErrSourceExists", err)
	}
	if _, err := db.Query(ctx, "SELEKT nope"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad sql: %v, want ErrBadQuery", err)
	}
	if _, err := db.Browse(ctx, ObjectRef{Source: "nope", Relation: "x", Accession: "y"}); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("browse unknown source: %v, want ErrUnknownSource", err)
	}
	if _, err := db.Browse(ctx, ObjectRef{Source: "swissprot", Relation: "protein", Accession: "NOPE999"}); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("browse unknown object: %v, want ErrUnknownObject", err)
	}
	if _, err := db.Objects(ctx, "nope"); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("objects unknown source: %v, want ErrUnknownSource", err)
	}
	if _, err := db.Reanalyze(ctx, "nope"); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("reanalyze unknown source: %v, want ErrUnknownSource", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Query(canceled, "SELECT 1"); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled query: %v, want ErrCanceled", err)
	}
	if _, err := db.AddSource(canceled, corpus.Source("pir")); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled add: %v, want ErrCanceled", err)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(ctx, "SELECT 1"); !errors.Is(err, ErrClosed) {
		t.Errorf("query after close: %v, want ErrClosed", err)
	}
	if _, err := db.AddSource(ctx, corpus.Source("pir")); !errors.Is(err, ErrClosed) {
		t.Errorf("add after close: %v, want ErrClosed", err)
	}
}

// TestSnapshotRoundTrip saves an integrated warehouse and restores it
// through Open(WithSnapshot), asserting the restored DB serves the same
// links and feedback.
func TestSnapshotRoundTrip(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot", "pdb")
	ctx := context.Background()

	links, _ := db.Stats(ctx)
	snap, err := db.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Open(WithOntologySources("go"), WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	st, err := restored.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.Sources != links.Repo.Sources || st.Repo.Links != links.Repo.Links {
		t.Errorf("restored stats %+v != original %+v", st.Repo, links.Repo)
	}
	if _, err := restored.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein"); err != nil {
		t.Errorf("restored warehouse: %v", err)
	}
}

// TestReanalyzeAndFeedbackThroughFacade exercises the §6.2 flows via the
// public API.
func TestReanalyzeAndFeedbackThroughFacade(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot", "pdb")
	ctx := context.Background()

	st, _ := db.Stats(ctx)
	if st.Repo.Links == 0 {
		t.Fatal("no links to test feedback on")
	}
	// Remove the first xref link and confirm re-analysis honors it.
	var target Link
	for _, ref := range mustObjects(t, db, "swissprot")[:4] {
		v, err := db.Browse(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Linked) > 0 {
			target = v.Linked[0]
			break
		}
	}
	if target.Type == 0 && target.From.Accession == "" {
		t.Skip("no linked object among first objects")
	}
	ok, err := db.RemoveLinkFeedback(ctx, target)
	if err != nil || !ok {
		t.Fatalf("remove feedback: ok=%v err=%v", ok, err)
	}
	if _, err := db.Reanalyze(ctx, target.From.Source); err != nil {
		t.Fatal(err)
	}
	v, err := db.Browse(ctx, target.From)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range v.Linked {
		if l.From == target.From && l.To == target.To {
			t.Error("removed link resurrected by re-analysis")
		}
	}

	trigger, err := db.RecordChanges(ctx, "swissprot", 1000000)
	if err != nil || !trigger {
		t.Errorf("RecordChanges: trigger=%v err=%v", trigger, err)
	}
}

func mustObjects(t *testing.T, db *DB, source string) []ObjectRef {
	t.Helper()
	objs, err := db.Objects(context.Background(), source)
	if err != nil {
		t.Fatal(err)
	}
	return objs
}

func TestOpenOptionValidation(t *testing.T) {
	if _, err := Open(WithWorkers(-1)); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Open(WithChangeThreshold(2)); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

// Compile-time interface sanity: the re-exported types are the internal
// ones, so values flow through without conversion.
var _ = metadata.ObjectRef(ObjectRef{})
