package aladin

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
)

// TestQueryRowsBasic: columns, typed Scan, display strings, clean end.
func TestQueryRowsBasic(t *testing.T) {
	db := openWith(t, testCorpus(), "swissprot")
	ctx := context.Background()

	rows, err := db.QueryRows(ctx, `SELECT accession, protein_id FROM swissprot_protein ORDER BY accession LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 2 || got[0] != "accession" {
		t.Fatalf("Columns = %v", got)
	}
	n := 0
	for rows.Next() {
		var acc string
		var id int64
		if err := rows.Scan(&acc, &id); err != nil {
			t.Fatal(err)
		}
		if acc == "" {
			t.Error("empty accession")
		}
		if cells := rows.RowStrings(); len(cells) != 2 || cells[0] != acc {
			t.Errorf("RowStrings = %v, want first cell %q", cells, acc)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("got %d rows, want 3", n)
	}

	// Scan arity and unsupported targets are diagnosed.
	rows2, err := db.QueryRows(ctx, `SELECT accession FROM swissprot_protein LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if !rows2.Next() {
		t.Fatal("no row")
	}
	var a, b string
	if err := rows2.Scan(&a, &b); err == nil {
		t.Error("Scan with wrong arity succeeded")
	}
	var f struct{}
	if err := rows2.Scan(&f); err == nil {
		t.Error("Scan into unsupported target succeeded")
	}
}

// TestQueryRowsEarlyStop is the acceptance probe: SELECT ... LIMIT 10
// over the 200-protein corpus evaluates only the rows needed.
func TestQueryRowsEarlyStop(t *testing.T) {
	corpus := datagen.Generate(datagen.Config{Seed: 7, Proteins: 200})
	db, err := Open(WithoutSearchIndex())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.AddSource(ctx, corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryRows(ctx, `SELECT accession FROM swissprot_protein LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("got %d rows, want 10", n)
	}
	if rows.Scanned() != 10 {
		t.Errorf("scanned %d of 200 tuples for LIMIT 10, want 10", rows.Scanned())
	}
}

// TestQueryRowsSnapshotAcrossAddSource: a cursor opened before an
// AddSource commit keeps yielding the pre-add snapshot to completion —
// half the rows are read before the commit, half after.
func TestQueryRowsSnapshotAcrossAddSource(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot")
	ctx := context.Background()

	rows, err := db.QueryRows(ctx, `SELECT accession FROM swissprot_protein ORDER BY accession`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	read := 0
	for read < 8 && rows.Next() {
		read++
	}
	if read != 8 {
		t.Fatalf("read %d rows pre-commit, want 8", read)
	}

	// Commit a second source mid-iteration; the open cursor must not see
	// it, and the new relations must be queryable afterwards.
	if _, err := db.AddSource(ctx, corpus.Source("pdb")); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		read++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if read != 16 {
		t.Fatalf("cursor yielded %d rows across the commit, want the pre-add 16", read)
	}
	res, err := db.Query(ctx, `SELECT COUNT(*) FROM pdb_structure`)
	if err != nil {
		t.Fatalf("new source not queryable after commit: %v", err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n == 0 {
		t.Error("pdb_structure empty after commit")
	}
}

// TestQueryRowsHammerDuringAddSource keeps many streaming cursors open
// and iterating (under -race) while an AddSource integrates, asserting
// every cursor sees a complete, consistent pre- or post-add snapshot.
func TestQueryRowsHammerDuringAddSource(t *testing.T) {
	corpus := testCorpus()
	db := openWith(t, corpus, "swissprot", "pdb")
	ctx := context.Background()

	const readers = 8
	done := make(chan struct{})
	errCh := make(chan error, readers)
	var iterations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rows, err := db.QueryRows(ctx, `SELECT accession FROM swissprot_protein`)
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					errCh <- err
					return
				}
				rows.Close()
				if n != 16 {
					errCh <- errors.New("cursor saw a partial snapshot")
					return
				}
				iterations.Add(1)
			}
		}()
	}

	// Don't start the write until the hammer is mid-flight: AddSource on
	// this small corpus can finish faster than a single cursor iteration,
	// leaving the two phases disjoint and the race untested.
	for deadline := time.Now().Add(10 * time.Second); iterations.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("hammer performed no complete iterations")
		}
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	if _, err := db.AddSource(ctx, corpus.Source("pir")); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestQueryRowsCancellation: canceling the QueryRows context aborts the
// iteration promptly and surfaces ErrCanceled from Err.
func TestQueryRowsCancellation(t *testing.T) {
	db := openWith(t, testCorpus(), "swissprot", "pdb")

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRows(ctx, `SELECT p.accession FROM swissprot_protein p CROSS JOIN pdb_structure CROSS JOIN swissprot_protein q`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err after cancel = %v, want ErrCanceled", err)
	}

	// An already-canceled context fails at open.
	if _, err := db.QueryRows(ctx, `SELECT 1`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryRows on canceled ctx = %v, want ErrCanceled", err)
	}
}

// TestQueryRejectsNonSelect: the query access mode is read-only; DML and
// DDL are refused with ErrBadQuery instead of mutating the warehouse
// behind the pipeline's back.
func TestQueryRejectsNonSelect(t *testing.T) {
	db := openWith(t, testCorpus(), "swissprot")
	ctx := context.Background()
	for _, q := range []string{
		`INSERT INTO swissprot_protein VALUES (1)`,
		`DELETE FROM swissprot_protein`,
		`DROP TABLE swissprot_protein`,
	} {
		if _, err := db.Query(ctx, q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("Query(%q) err = %v, want ErrBadQuery", q, err)
		}
		if _, err := db.QueryRows(ctx, q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("QueryRows(%q) err = %v, want ErrBadQuery", q, err)
		}
	}
}

// TestPlanCache: plans are cached per SQL text with LRU eviction, reused
// plans stay correct across new commits, and the cache is race-safe.
func TestPlanCache(t *testing.T) {
	corpus := testCorpus()
	db, err := Open(WithOntologySources("go"), WithPlanCache(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.AddSource(ctx, corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}

	count := func(q string) int64 {
		t.Helper()
		res, err := db.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		return n
	}
	q1 := `SELECT COUNT(*) FROM swissprot_protein`
	if count(q1) != 16 {
		t.Fatal("wrong count")
	}
	count(`SELECT COUNT(*) FROM swissprot_sequence`)
	count(`SELECT COUNT(*) FROM swissprot_dbref`)
	if got := db.plans.len(); got != 2 {
		t.Errorf("plan cache holds %d plans, want 2 (LRU evicted)", got)
	}

	// A cached plan opened after a new commit sees the new warehouse.
	if count(q1) != 16 {
		t.Fatal("cached plan changed the result")
	}
	if _, err := db.AddSource(ctx, corpus.Source("pdb")); err != nil {
		t.Fatal(err)
	}
	if count(q1) != 16 {
		t.Error("cached plan broken after commit")
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := db.Query(ctx, q1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if _, err := Open(WithPlanCache(0)); err == nil {
		t.Error("WithPlanCache(0) accepted, want config error")
	}
}
