package aladin

// Streaming ingestion (the public face of internal/ingest): IngestSource
// parses records straight off an io.Reader and integrates them in
// bounded batches — the first batch creates the source through the full
// five-step pipeline (discovery runs on it, so make the batch size large
// enough to be representative), every later batch flows through the
// append path reusing the discovered structure. Readers observe only
// batch-boundary snapshots: each batch commits atomically under the
// write lock, and memory stays bounded by the batch size regardless of
// input length. Live mode (WithLiveSource) runs the same machinery over
// a tail-following reader until Close.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flatfile"
	"repro/internal/ingest"
	"repro/internal/rel"
)

// IngestProgress reports the state after one committed batch.
type IngestProgress = ingest.Progress

// IngestSummary aggregates one ingestion run.
type IngestSummary = ingest.Summary

// IngestReport summarizes one IngestSource run.
type IngestReport struct {
	Source string
	IngestSummary
}

// IngestStats aggregates streaming-ingestion activity since Open,
// reported by Stats().Ingest.
type IngestStats struct {
	Runs    int
	Batches int
	Records int
	Tuples  int
	Bytes   int64
	Links   int
	// Per-stage wall time summed across runs: scanner parsing, batch
	// assembly, link discovery, duplicate detection, index/browse/journal
	// preparation, and the write-locked commits.
	Parse  time.Duration
	Batch  time.Duration
	Link   time.Duration
	Dup    time.Duration
	Index  time.Duration
	Commit time.Duration
	// LiveSources is the number of live tails currently running;
	// LastError is the most recent live-ingest failure ("" while healthy).
	LiveSources int
	LastError   string
}

// NewTailReader wraps a growing file (or any reader) with tail-follow
// semantics for live ingestion: at end of data it polls until more bytes
// arrive, and reports EOF only once ctx is canceled. poll <= 0 uses the
// default (200ms). Feed it to IngestSource to tail a file that is still
// being written.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) io.Reader {
	return ingest.NewTailReader(ctx, r, poll)
}

// ErrBadFormat rejects ingestion formats the streaming scanners do not
// support (whole-file formats like OBO and XML go through AddSource).
var ErrBadFormat = errors.New("aladin: format not streamable")

// IngestOption tunes one IngestSource call.
type IngestOption func(*ingestConfig)

type ingestConfig struct {
	batchRecords int
	progress     func(IngestProgress)
	stall        time.Duration
}

// WithBatchRecords sets the number of logical records per committed
// batch (default 1000). Larger batches amortize per-batch link/duplicate
// work; smaller batches bound memory and publish sooner.
func WithBatchRecords(n int) IngestOption {
	return func(c *ingestConfig) { c.batchRecords = n }
}

// WithIngestProgress invokes fn after every committed batch — the hook
// behind the HTTP streaming upload's NDJSON progress lines.
func WithIngestProgress(fn func(IngestProgress)) IngestOption {
	return func(c *ingestConfig) { c.progress = fn }
}

// WithFlushStall commits a partial batch once the input has been idle
// for d — tail-follow mode, where a record should become queryable
// shortly after it is written instead of waiting for a full batch.
// Zero (the default) flushes only on full batches and at end of input.
func WithFlushStall(d time.Duration) IngestOption {
	return func(c *ingestConfig) { c.stall = d }
}

// IngestSource streams records of the given format from r into the named
// source. If the source does not exist, the first batch creates it via
// the full integration pipeline; subsequent batches append with
// incremental index, statistics, browse and search maintenance, one WAL
// frame per batch. Concurrent readers see each batch atomically at its
// commit; a failure or cancellation leaves every previously committed
// batch in place (the warehouse is always at a batch boundary). The
// returned report describes the committed prefix even on error.
//
// Errors: ErrBadFormat, ErrNoPrimary (first batch), ErrCanceled,
// ErrReadOnlyReplica, ErrClosed, and parse errors from the scanner.
func (d *DB) IngestSource(ctx context.Context, name, format string, r io.Reader, opts ...IngestOption) (*IngestReport, error) {
	if name == "" {
		return nil, errors.New("aladin: empty source name")
	}
	if err := d.replicaGuard(); err != nil {
		return nil, err
	}
	if !flatfile.Streamable(format) {
		return nil, fmt.Errorf("%w: %q (streamable: %s)", ErrBadFormat, format, strings.Join(flatfile.StreamFormats(), ", "))
	}
	var cfg ingestConfig
	for _, o := range opts {
		o(&cfg)
	}
	cr := &ingest.CountingReader{R: r}
	sc, err := flatfile.NewScanner(format, cr)
	if err != nil {
		return nil, err
	}

	d.addMu.Lock()
	defer d.addMu.Unlock()

	d.mu.RLock()
	err = d.checkOpenRLocked()
	exists := err == nil && d.sys.Repo.Source(name) != nil
	d.mu.RUnlock()
	if err != nil {
		return nil, err
	}

	first := !exists
	commit := func(ctx context.Context, batch *rel.Database) (ingest.CommitInfo, error) {
		batch.Name = name
		if first {
			p, err := d.prepare(ctx, batch)
			if err != nil {
				return ingest.CommitInfo{}, err
			}
			d.mu.Lock()
			if d.closed {
				d.sys.Abort(p)
				d.mu.Unlock()
				return ingest.CommitInfo{}, ErrClosed
			}
			rep, err := d.commit(p)
			seq := d.sys.SnapshotSeq()
			d.mu.Unlock()
			if err != nil {
				return ingest.CommitInfo{}, err
			}
			first = false
			d.maybeCheckpoint()
			return commitInfo(seq, rep.Timings, rep.LinksAdded), nil
		}
		p, err := d.prepareAppend(ctx, name, batch)
		if err != nil {
			return ingest.CommitInfo{}, err
		}
		d.mu.Lock()
		if d.closed {
			d.sys.AbortAppend(p)
			d.mu.Unlock()
			return ingest.CommitInfo{}, ErrClosed
		}
		rep, err := d.commitAppend(p)
		d.mu.Unlock()
		if err != nil {
			return ingest.CommitInfo{}, err
		}
		d.maybeCheckpoint()
		return commitInfo(rep.Seq, rep.Timings, rep.LinksAdded), nil
	}

	runner := &ingest.Runner{Scanner: sc, Commit: commit, Opts: ingest.Options{
		BatchRecords: cfg.batchRecords,
		Progress:     cfg.progress,
		Counter:      cr,
		FlushStall:   cfg.stall,
	}}
	sum, runErr := runner.Run(ctx)
	d.recordIngest(sum)
	rep := &IngestReport{Source: name, IngestSummary: *sum}
	if runErr != nil {
		return rep, mapPipelineErr(runErr)
	}
	return rep, nil
}

// prepareAppend runs the batch compute phase, converting pipeline panics
// into errors (mirrors prepare).
func (d *DB) prepareAppend(ctx context.Context, name string, batch *rel.Database) (p *core.PendingAppend, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("%w: IngestSource(%s): %v", ErrInternal, name, r)
		}
	}()
	p, err = d.sys.PrepareAppend(ctx, name, batch)
	if err != nil {
		return nil, mapPipelineErr(err)
	}
	return p, nil
}

// commitAppend publishes a prepared batch under the held write lock; a
// panic here fails stop exactly as commit does.
func (d *DB) commitAppend(p *core.PendingAppend) (rep *core.AppendReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.closed = true
			rep, err = nil, fmt.Errorf("%w: commit of %s panicked, database closed: %v", ErrInternal, p.Source(), r)
		}
	}()
	rep, err = d.sys.CommitAppend(p)
	if err != nil {
		return nil, fmt.Errorf("aladin: commit: %w", err)
	}
	return rep, nil
}

// commitInfo folds a commit report's step timings into the runner's
// per-stage buckets.
func commitInfo(seq uint64, timings []core.StepTiming, linksAdded map[string]int) ingest.CommitInfo {
	info := ingest.CommitInfo{Seq: seq}
	for _, t := range timings {
		switch t.Step {
		case "link-discovery", "append-link-discovery":
			info.Link += t.Duration
		case "duplicate-detection", "append-duplicate-detection":
			info.Dup += t.Duration
		case "profile", "discover-structure", "append-prepare":
			info.Index += t.Duration
		case "register-and-index", "append-commit":
			info.Commit += t.Duration
		}
	}
	for _, n := range linksAdded {
		info.Links += n
	}
	return info
}

// recordIngest folds one run's summary into the DB-lifetime totals.
func (d *DB) recordIngest(sum *ingest.Summary) {
	if sum == nil {
		return
	}
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	d.ingestTotals.Runs++
	d.ingestTotals.Batches += sum.Batches
	d.ingestTotals.Records += sum.Records
	d.ingestTotals.Tuples += sum.Tuples
	d.ingestTotals.Bytes += sum.Bytes
	d.ingestTotals.Links += sum.Links
	d.ingestTotals.Parse += sum.Parse
	d.ingestTotals.Batch += sum.Batch
	d.ingestTotals.Link += sum.Link
	d.ingestTotals.Dup += sum.Dup
	d.ingestTotals.Index += sum.Index
	d.ingestTotals.Commit += sum.Commit
}

// ingestStats snapshots the lifetime totals plus live-tail state.
func (d *DB) ingestStats() IngestStats {
	d.ingestMu.Lock()
	out := d.ingestTotals
	d.ingestMu.Unlock()
	if d.live != nil {
		out.LiveSources = int(atomic.LoadInt32(&d.live.active))
		if err := d.live.lastError(); err != nil {
			out.LastError = err.Error()
		}
	}
	return out
}

// liveSpec is one WithLiveSource registration.
type liveSpec struct {
	name, format, path string
}

// liveState tracks the live-tail goroutines started at Open.
type liveState struct {
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	active   int32
	stopOnce sync.Once

	mu      sync.Mutex
	lastErr error
}

// stop cancels the tails and waits for their final batches to commit.
// Called by Close BEFORE taking the write lock, so the final commits can
// still acquire it.
func (ls *liveState) stop() {
	ls.stopOnce.Do(func() {
		ls.cancel()
		ls.wg.Wait()
	})
}

func (ls *liveState) fail(err error) {
	ls.mu.Lock()
	ls.lastErr = err
	ls.mu.Unlock()
}

func (ls *liveState) lastError() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.lastErr
}

// startLive opens each live source's file and starts its tail-ingest
// goroutine. Cancellation (Close) stops the tail at the next poll; the
// run itself uses a background context so the final partial batch still
// commits before Close proceeds.
func (d *DB) startLive(specs []liveSpec) error {
	ctx, cancel := context.WithCancel(context.Background())
	ls := &liveState{cancel: cancel}
	d.live = ls
	for _, sp := range specs {
		f, err := os.Open(sp.path)
		if err != nil {
			cancel()
			return fmt.Errorf("aladin: live source %q: %w", sp.name, err)
		}
		ls.wg.Add(1)
		atomic.AddInt32(&ls.active, 1)
		go func(sp liveSpec, f *os.File) {
			defer ls.wg.Done()
			defer atomic.AddInt32(&ls.active, -1)
			defer f.Close()
			tr := ingest.NewTailReader(ctx, f, 0)
			// A modest stall flush keeps the tail live: records written to
			// the file surface within ~2 polls even when the batch is far
			// from full.
			if _, err := d.IngestSource(context.Background(), sp.name, sp.format, tr,
				WithFlushStall(300*time.Millisecond)); err != nil {
				ls.fail(fmt.Errorf("live source %q: %w", sp.name, err))
			}
		}(sp, f)
	}
	return nil
}
