package aladin

import "errors"

// Sentinel errors returned by DB methods; test with errors.Is. Wrapped
// variants carry detail (the offending name, the underlying error).
var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("aladin: database closed")
	// ErrSourceExists rejects integrating a source name twice.
	ErrSourceExists = errors.New("aladin: source already integrated")
	// ErrUnknownSource names a source that was never integrated.
	ErrUnknownSource = errors.New("aladin: unknown source")
	// ErrUnknownObject names an accession the source does not contain, or
	// an object without duplicate-detection records.
	ErrUnknownObject = errors.New("aladin: unknown object")
	// ErrNoPrimary means discovery found no primary relation (§4.2) — the
	// source cannot be integrated as imported.
	ErrNoPrimary = errors.New("aladin: no primary relation found")
	// ErrBadQuery wraps SQL parse and execution errors.
	ErrBadQuery = errors.New("aladin: bad query")
	// ErrCanceled wraps context.Canceled / context.DeadlineExceeded; the
	// wrapped chain still matches the original context error.
	ErrCanceled = errors.New("aladin: canceled")
	// ErrInternal wraps a recovered pipeline panic. The database state is
	// unwound; the source that triggered it was not integrated.
	ErrInternal = errors.New("aladin: internal error")
	// ErrReadOnlyReplica rejects mutations on a database opened with
	// WithReplicaOf; the wrapped message names the primary to write to.
	ErrReadOnlyReplica = errors.New("aladin: read-only replica")
)
