// Command aladin-loadgen drives read load against one or more aladind
// instances and reports throughput and latency. It is the measurement
// harness behind BENCH_replication.json: point it at a primary alone,
// then at the primary plus its read replicas, and compare reads/sec.
//
// Usage:
//
//	aladin-loadgen -targets http://p:8317,http://r1:8318 \
//	    [-query "SELECT COUNT(*) FROM swissprot_protein"] \
//	    [-duration 10s] [-concurrency 8] [-json]
//
// Requests are spread round-robin across the targets; each worker is a
// keep-alive HTTP client issuing GET /v1/query as fast as the servers
// answer. Non-200 responses count as errors. With -json the report is a
// single machine-readable object on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type report struct {
	Targets     []string `json:"targets"`
	Query       string   `json:"query"`
	Concurrency int      `json:"concurrency"`
	Duration    string   `json:"duration"`
	Requests    int64    `json:"requests"`
	Errors      int64    `json:"errors"`
	ReadsPerSec float64  `json:"reads_per_sec"`
	P50Ms       float64  `json:"p50_ms"`
	P95Ms       float64  `json:"p95_ms"`
	P99Ms       float64  `json:"p99_ms"`
	MaxMs       float64  `json:"max_ms"`
}

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8317", "comma-separated aladind base URLs")
		query       = flag.String("query", "SELECT COUNT(*) FROM swissprot_protein", "SQL issued via GET /v1/query")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		asJSON      = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	urls := strings.Split(*targets, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	rep, err := run(urls, *query, *duration, *concurrency)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aladin-loadgen:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("targets:     %s\n", strings.Join(rep.Targets, ", "))
	fmt.Printf("requests:    %d (%d errors) in %s\n", rep.Requests, rep.Errors, rep.Duration)
	fmt.Printf("reads/sec:   %.1f\n", rep.ReadsPerSec)
	fmt.Printf("latency ms:  p50=%.2f p95=%.2f p99=%.2f max=%.2f\n", rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
}

// Run drives `concurrency` workers for `duration` and aggregates.
func run(targets []string, query string, duration time.Duration, concurrency int) (*report, error) {
	if len(targets) == 0 || concurrency < 1 {
		return nil, fmt.Errorf("need at least one target and one worker")
	}
	path := "/v1/query?q=" + url.QueryEscape(query) + "&limit=1"
	var (
		requests, errors atomic.Int64
		next             atomic.Uint64
		mu               sync.Mutex
		latencies        []time.Duration
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			var local []time.Duration
			for time.Now().Before(deadline) {
				target := targets[next.Add(1)%uint64(len(targets))]
				t0 := time.Now()
				resp, err := client.Get(target + path)
				requests.Add(1)
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()

	rep := &report{
		Targets: targets, Query: query, Concurrency: concurrency,
		Duration: duration.String(),
		Requests: requests.Load(), Errors: errors.Load(),
		ReadsPerSec: float64(requests.Load()-errors.Load()) / duration.Seconds(),
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(latencies)-1))
			return float64(latencies[i]) / float64(time.Millisecond)
		}
		rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
		rep.MaxMs = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}
	return rep, nil
}
