package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
)

// newReplicaPair serves a durable primary and a bootstrapped read
// replica of it, both over httptest.
func newReplicaPair(t *testing.T) (primaryTS, replicaTS *httptest.Server, primary *aladin.DB) {
	t.Helper()
	primary, err := aladin.Open(aladin.WithOntologySources("go"), aladin.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 10})
	ctx := context.Background()
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := primary.AddSource(ctx, corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	primaryTS = httptest.NewServer(newServer(primary, 30*time.Second).handler())
	t.Cleanup(primaryTS.Close)

	replica, err := aladin.Open(aladin.WithOntologySources("go"),
		aladin.WithDataDir(t.TempDir()), aladin.WithReplicaOf(primaryTS.URL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	replicaTS = httptest.NewServer(newServer(replica, 30*time.Second).handler())
	t.Cleanup(replicaTS.Close)
	return primaryTS, replicaTS, primary
}

// TestHTTPReplicaServing: a replica aladind answers the read API with
// the primary's data and snapshot-stamped responses, refuses writes
// with 403 read_only_replica, and does not serve the replication API
// itself.
func TestHTTPReplicaServing(t *testing.T) {
	primaryTS, replicaTS, _ := newReplicaPair(t)
	q := escape("SELECT COUNT(*) FROM swissprot_protein")

	pq := getJSON(t, primaryTS.URL+"/v1/query?q="+q, 200)
	rq := getJSON(t, replicaTS.URL+"/v1/query?q="+q, 200)
	pRows, rRows := pq["rows"].([]any), rq["rows"].([]any)
	if pRows[0].([]any)[0] != rRows[0].([]any)[0] {
		t.Errorf("replica answers %v, primary %v", rRows, pRows)
	}

	// Reads are stamped with the snapshot they observed; with zero lag
	// the replica reports the same snapshot ID as the primary.
	resp, err := http.Get(replicaTS.URL + "/v1/query?q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sid := resp.Header.Get("X-Aladin-Snapshot")
	if sid == "" || resp.Header.Get("ETag") == "" {
		t.Fatalf("replica query carries no snapshot header (%q / %q)", sid, resp.Header.Get("ETag"))
	}
	st := getJSON(t, replicaTS.URL+"/v1/stats", 200)
	snap := st["snapshot"].(map[string]any)
	if snap["id"].(string) != sid {
		t.Errorf("stats snapshot %v != header %q", snap["id"], sid)
	}
	rep := st["replication"].(map[string]any)
	if rep["role"] != "replica" || rep["state"] != aladin.ReplStateStreaming {
		t.Errorf("replication block = %v", rep)
	}
	if pst := getJSON(t, primaryTS.URL+"/v1/stats", 200); pst["replication"].(map[string]any)["role"] != "primary" {
		t.Errorf("primary replication block = %v", pst["replication"])
	}

	// Writes are rejected with a structured 403 naming the primary.
	resp, err = http.Post(replicaTS.URL+"/v1/sources?name=up&format=csv", "text/csv",
		strings.NewReader("accession,name\nU1,thing\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), "read_only_replica") {
		t.Errorf("POST to replica = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), primaryTS.URL) {
		t.Errorf("403 body does not name the primary: %s", body)
	}

	// The replication API is the primary's alone; a replica 404s it
	// (chaining is not supported).
	if m := getJSON(t, primaryTS.URL+"/v1/repl/manifest", 200); m["record_seq"] == nil {
		t.Errorf("primary manifest = %v", m)
	}
	resp, err = http.Get(replicaTS.URL + "/v1/repl/manifest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("replica /v1/repl/manifest = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPHealthAndReady: /healthz is liveness (200 everywhere);
// /readyz reflects role and replication health.
func TestHTTPHealthAndReady(t *testing.T) {
	primaryTS, replicaTS, _ := newReplicaPair(t)

	for _, ts := range []*httptest.Server{primaryTS, replicaTS} {
		h := getJSON(t, ts.URL+"/healthz", 200)
		if h["ok"] != true {
			t.Errorf("healthz = %v", h)
		}
	}
	pr := getJSON(t, primaryTS.URL+"/readyz", 200)
	if pr["ready"] != true || pr["role"] != "primary" {
		t.Errorf("primary readyz = %v", pr)
	}
	rr := getJSON(t, replicaTS.URL+"/readyz", 200)
	if rr["ready"] != true || rr["role"] != "replica" || rr["state"] != aladin.ReplStateStreaming {
		t.Errorf("replica readyz = %v", rr)
	}
}

// TestHTTPStaleCursor: a pagination cursor is pinned to the snapshot of
// its first page; after any mutation the next fetch fails with 410
// stale_cursor instead of silently shifting rows.
func TestHTTPStaleCursor(t *testing.T) {
	ts, db := newTestServer(t)
	q := escape("SELECT accession FROM swissprot_protein ORDER BY accession")

	page := getJSON(t, ts.URL+"/v1/query?q="+q+"&limit=3", 200)
	cursor, ok := page["next_cursor"].(string)
	if !ok || cursor == "" {
		t.Fatalf("first page carries no cursor: %v", page)
	}
	// Unchanged warehouse: the cursor pages on fine.
	page2 := getJSON(t, ts.URL+"/v1/query?q="+q+"&limit=3&cursor="+cursor, 200)
	if page2["count"].(float64) == 0 {
		t.Fatalf("second page empty: %v", page2)
	}

	if _, err := db.Exec(context.Background(), "DELETE FROM pdb_structure WHERE 1 = 1"); err != nil {
		t.Fatal(err)
	}
	stale := getJSON(t, ts.URL+"/v1/query?q="+q+"&limit=3&cursor="+cursor, 410)
	if code := stale["error"].(map[string]any)["code"]; code != "stale_cursor" {
		t.Errorf("post-mutation cursor code = %v, want stale_cursor", code)
	}
}
