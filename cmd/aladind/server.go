package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/aladin"
	"repro/internal/flatfile"
)

// maxUploadBytes caps POST /v1/sources bodies.
const maxUploadBytes = 64 << 20

// Query paging bounds: every /v1/query response carries at most
// maxQueryLimit rows (defaultQueryLimit without an explicit limit), so a
// broad query can no longer materialize an unbounded JSON body; callers
// page through the rest with the cursor parameter.
const (
	defaultQueryLimit = 100
	maxQueryLimit     = 1000
)

// server routes HTTP requests onto one aladin.DB.
type server struct {
	db *aladin.DB
	// timeout bounds each request's context (0 = none).
	timeout time.Duration
	// readyMaxLag is how many un-applied records behind the primary a
	// replica may be and still report ready (see handleReadyz).
	readyMaxLag uint64
	logf        func(format string, args ...any)
}

func newServer(db *aladin.DB, timeout time.Duration) *server {
	return &server{db: db, timeout: timeout, readyMaxLag: 64, logf: log.Printf}
}

// handler builds the route table and wraps it with the recovery and
// per-request-timeout middleware.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/search", s.handleSearch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/sources", s.handleSources)
	mux.HandleFunc("POST /v1/sources", s.handleAddSource)
	mux.HandleFunc("GET /v1/objects/{source}", s.handleObjects)
	mux.HandleFunc("GET /v1/objects/{source}/{accession}", s.handleObject)
	mux.HandleFunc("GET /v1/objects/{source}/{accession}/related", s.handleRelated)
	mux.HandleFunc("GET /v1/objects/{source}/{accession}/crawl", s.handleCrawl)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// A durable primary additionally serves the replication API the
	// -replica-of peers stream from (absent on replicas and in-memory
	// servers; ReplHandler returns nil there).
	if h := s.db.ReplHandler(); h != nil {
		mux.Handle("GET /v1/repl/", h)
	}
	return s.middleware(mux)
}

// middleware applies the per-request timeout, stamps read responses
// with the snapshot they observe, and converts panics into structured
// 500 responses instead of killing the connection.
func (s *server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		// Every read carries the snapshot ID (checkpoint generation +
		// last applied mutation sequence) it was served from, as an
		// ETag-style header clients can compare across requests and
		// across replicas. handleQuery overrides it with the exact ID its
		// row cursor is bound to (a mutation may land between here and
		// the cursor opening).
		if (r.Method == http.MethodGet || r.Method == http.MethodHead) && strings.HasPrefix(r.URL.Path, "/v1/") {
			if sid, err := s.db.SnapshotID(r.Context()); err == nil {
				setSnapshotHeader(w, sid)
			}
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("aladind: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				writeError(w, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func setSnapshotHeader(w http.ResponseWriter, sid aladin.SnapshotID) {
	w.Header().Set("X-Aladin-Snapshot", sid.String())
	w.Header().Set("ETag", `W/"`+sid.String()+`"`)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz is readiness: whether this instance should receive
// traffic. A primary (or in-memory server) is ready once it serves
// requests at all; a replica is ready only when its bootstrap is
// complete, the stream is healthy, and its lag is at most readyMaxLag —
// a stale or erroring replica keeps serving /v1 reads but tells the
// load balancer to route elsewhere.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st, err := s.db.Stats(r.Context())
	if err != nil {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "error": err.Error()})
		return
	}
	rep := st.Replication
	out := map[string]any{"ready": true, "role": rep.Role}
	if rep.Role == "replica" {
		out["state"] = rep.State
		out["lag"] = rep.Lag
		if rep.State != aladin.ReplStateStreaming || rep.Lag > s.readyMaxLag {
			out["ready"] = false
			writeJSONStatus(w, http.StatusServiceUnavailable, out)
			return
		}
	}
	writeJSON(w, out)
}

// errorBody is the structured error payload of every non-2xx response.
type errorBody struct {
	Error struct {
		Status  int    `json:"status"`
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Status = status
	body.Error.Code = code
	body.Error.Message = msg
	writeJSONStatus(w, status, body)
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorStatusCode maps the aladin package's typed errors onto an HTTP
// status and a stable error code.
func errorStatusCode(err error) (int, string) {
	switch {
	case errors.Is(err, aladin.ErrBadQuery):
		return http.StatusBadRequest, "bad_query"
	case errors.Is(err, aladin.ErrUnknownSource):
		return http.StatusNotFound, "unknown_source"
	case errors.Is(err, aladin.ErrUnknownObject):
		return http.StatusNotFound, "unknown_object"
	case errors.Is(err, aladin.ErrSourceExists):
		return http.StatusConflict, "source_exists"
	case errors.Is(err, aladin.ErrNoPrimary):
		return http.StatusUnprocessableEntity, "no_primary_relation"
	case errors.Is(err, aladin.ErrBadFormat):
		return http.StatusBadRequest, "bad_format"
	case errors.Is(err, aladin.ErrReadOnlyReplica):
		// The structured message names the primary to write to instead.
		return http.StatusForbidden, "read_only_replica"
	case errors.Is(err, aladin.ErrCanceled):
		// DeadlineExceeded = the per-request timeout fired; plain Canceled
		// = the client went away.
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout, "timeout"
		}
		return http.StatusBadRequest, "canceled"
	case errors.Is(err, aladin.ErrClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// fail writes the structured error response for err.
func (s *server) fail(w http.ResponseWriter, err error) {
	status, code := errorStatusCode(err)
	writeError(w, status, code, err.Error())
}

// --- wire DTOs -------------------------------------------------------

type refJSON struct {
	Source    string `json:"source"`
	Relation  string `json:"relation"`
	Accession string `json:"accession"`
}

func toRefJSON(r aladin.ObjectRef) refJSON {
	return refJSON{Source: r.Source, Relation: r.Relation, Accession: r.Accession}
}

type linkJSON struct {
	Type       string  `json:"type"`
	From       refJSON `json:"from"`
	To         refJSON `json:"to"`
	Confidence float64 `json:"confidence"`
	Method     string  `json:"method"`
}

func toLinkJSON(l aladin.Link) linkJSON {
	return linkJSON{
		Type: l.Type.String(), From: toRefJSON(l.From), To: toRefJSON(l.To),
		Confidence: l.Confidence, Method: l.Method,
	}
}

// --- handlers --------------------------------------------------------

// handleQuery serves one page of a SQL result:
//
//	GET /v1/query?q=SQL[&limit=n][&cursor=token][&explain=1]
//
// Rows stream straight from the warehouse cursor into the JSON encoder —
// at most `limit` of them (default defaultQueryLimit, capped at
// maxQueryLimit), so the response body is bounded no matter how broad
// the query is. When more rows remain, the envelope carries an opaque
// next_cursor; passing it back (with the same q) returns the next page.
// Cursors are pinned to the snapshot ID of the page that created them
// (also exposed in the X-Aladin-Snapshot header): if the warehouse
// mutates between two page fetches, the next fetch fails with 410
// stale_cursor instead of silently shifting rows, and the client
// restarts its pagination. With explain=1 the envelope also carries the access plan
// (operator tree with chosen index/scan paths) under "plan";
// explain=analyze executes the query and the plan gains actual rows and
// operator times. Unknown query parameters are rejected with a
// structured 400 — a typo like limt=10 must not silently fall back to
// the defaults.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	for name := range params {
		switch name {
		case "q", "limit", "cursor", "explain":
		default:
			writeError(w, http.StatusBadRequest, "unknown_parameter",
				fmt.Sprintf("unknown query parameter %q (expected q, limit, cursor, explain)", name))
			return
		}
	}
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "missing query parameter q")
		return
	}
	limit, err := intParam("limit", params.Get("limit"), defaultQueryLimit, 1, maxQueryLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	explain, err := explainParam(params.Get("explain"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	// QueryRowsExplain binds plan and cursor to one warehouse snapshot,
	// so the plan in the envelope describes exactly the rows beside it
	// even when an AddSource commit lands mid-request. explain=analyze
	// instead executes the query once up front to meter actual rows and
	// operator times, then streams the page from a second execution.
	var rows *aladin.Rows
	planText := ""
	switch explain {
	case explainAnalyze:
		planText, err = s.db.ExplainAnalyze(r.Context(), q)
		if err == nil {
			rows, err = s.db.QueryRows(r.Context(), q)
		}
	case explainPlan:
		rows, planText, err = s.db.QueryRowsExplain(r.Context(), q)
	default:
		rows, err = s.db.QueryRows(r.Context(), q)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	defer rows.Close()

	// The response is pinned to the snapshot these rows iterate; cursors
	// bind to it, so a page sequence either completes against one
	// consistent state or fails fast with 410 when a mutation (here or,
	// via replication, anywhere in the cluster) moved the warehouse on.
	sid := rows.SnapshotID()
	setSnapshotHeader(w, sid)
	offset := 0
	if token := params.Get("cursor"); token != "" {
		offset, err = decodeCursor(q, token, sid)
		if errors.Is(err, errStaleCursor) {
			writeError(w, http.StatusGone, "stale_cursor", err.Error())
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_cursor", err.Error())
			return
		}
	}

	// Advance to the cursor position before the status line is written,
	// so errors in the skipped range still map to proper statuses.
	skipped := 0
	for skipped < offset && rows.Next() {
		skipped++
	}
	if err := rows.Err(); err != nil {
		s.fail(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	cols, _ := json.Marshal(rows.Columns())
	fmt.Fprintf(w, `{"columns":%s,"limit":%d`, cols, limit)
	if explain != explainNone {
		plan, _ := json.Marshal(planText)
		fmt.Fprintf(w, `,"plan":%s`, plan)
	}
	fmt.Fprint(w, `,"rows":[`)
	count := 0
	for count < limit && rows.Next() {
		cells, _ := json.Marshal(rows.RowStrings())
		if count > 0 {
			w.Write([]byte(","))
		}
		w.Write(cells)
		count++
	}
	// One extra pull decides whether a next page exists.
	more := count == limit && rows.Next()
	fmt.Fprintf(w, `],"count":%d`, count)
	if more {
		fmt.Fprintf(w, `,"next_cursor":%q`, encodeCursor(q, offset+count, sid))
	}
	if err := rows.Err(); err != nil {
		// The status line is long gone; surface a mid-stream execution
		// error in the envelope instead of silently truncating, using the
		// same {"status","code","message"} object shape as writeError.
		s.logf("aladind: query %q failed mid-stream: %v", q, err)
		status, code := errorStatusCode(err)
		var body errorBody
		body.Error.Status = status
		body.Error.Code = code
		body.Error.Message = err.Error()
		msg, _ := json.Marshal(body.Error)
		fmt.Fprintf(w, `,"error":%s`, msg)
	}
	fmt.Fprint(w, "}\n")
}

// queryCursor is the decoded form of the opaque pagination token: the
// row offset of the next page, bound to a hash of the query text (so a
// cursor cannot be replayed against a different statement) and to the
// snapshot ID the first page was served from (so offset-based paging
// never silently straddles a mutation — on any replica of the same
// primary, equal snapshot IDs mean identical row numbering).
type queryCursor struct {
	Hash     string `json:"q"`
	Offset   int    `json:"o"`
	Snapshot string `json:"s"`
}

func queryHash(q string) string {
	h := fnv.New64a()
	io.WriteString(h, q)
	return strconv.FormatUint(h.Sum64(), 16)
}

func encodeCursor(q string, offset int, sid aladin.SnapshotID) string {
	b, _ := json.Marshal(queryCursor{Hash: queryHash(q), Offset: offset, Snapshot: sid.String()})
	return base64.RawURLEncoding.EncodeToString(b)
}

// errStaleCursor distinguishes a cursor from a different snapshot (410,
// the client restarts its pagination) from a malformed one (400).
var errStaleCursor = errors.New("cursor was created against a different warehouse snapshot; restart the pagination")

func decodeCursor(q, token string, sid aladin.SnapshotID) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return 0, errors.New("malformed cursor")
	}
	var c queryCursor
	if err := json.Unmarshal(raw, &c); err != nil {
		return 0, errors.New("malformed cursor")
	}
	if c.Hash != queryHash(q) {
		return 0, errors.New("cursor does not match query parameter q")
	}
	if c.Offset < 0 {
		return 0, errors.New("malformed cursor")
	}
	if c.Snapshot != sid.String() {
		return 0, fmt.Errorf("%w (cursor %s, current %s)", errStaleCursor, c.Snapshot, sid)
	}
	return c.Offset, nil
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "missing query parameter q")
		return
	}
	f := aladin.SearchFilter{
		Sources:     params["source"],
		Columns:     params["column"],
		PrimaryOnly: params.Get("primary") == "true",
	}
	limit, err := intParam("limit", params.Get("limit"), 10, 1, maxQueryLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	results, err := s.db.Search(r.Context(), q, f, limit)
	if err != nil {
		s.fail(w, err)
		return
	}
	type hit struct {
		Object   refJSON `json:"object"`
		Relation string  `json:"relation"`
		Column   string  `json:"column"`
		Score    float64 `json:"score"`
		Snippet  string  `json:"snippet"`
	}
	hits := make([]hit, 0, len(results))
	for _, res := range results {
		hits = append(hits, hit{
			Object:   toRefJSON(res.Document.Object),
			Relation: res.Document.Relation,
			Column:   res.Document.Column,
			Score:    res.Score,
			Snippet:  aladin.Snippet(res, q, 80),
		})
	}
	writeJSON(w, map[string]any{"query": q, "results": hits, "count": len(hits)})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.db.Stats(r.Context())
	if err != nil {
		s.fail(w, err)
		return
	}
	out := map[string]any{
		"sources":       st.Repo.Sources,
		"links":         st.Repo.Links,
		"links_by_type": st.Repo.LinksByType,
		"removed_links": st.Repo.RemovedLinks,
		"snapshot": map[string]any{
			"checkpoint_gen": st.Snapshot.Gen,
			"applied_seq":    st.Snapshot.Seq,
			"id":             st.Snapshot.String(),
		},
		"web": map[string]any{
			"objects":           st.Web.Objects,
			"linked_objects":    st.Web.LinkedObjects,
			"components":        st.Web.Components,
			"largest_component": st.Web.LargestComponent,
			"mean_degree":       st.Web.MeanDegree,
		},
		"indexed_documents": st.IndexedDocuments,
	}
	if st.Durability.Enabled {
		dur := map[string]any{
			"dir":             st.Durability.Dir,
			"checkpoints":     st.Durability.Gen,
			"wal_records":     st.Durability.WALRecords,
			"wal_bytes":       st.Durability.WALBytes,
			"dirty_sources":   st.Durability.DirtySources,
			"checkpointed":    st.Durability.Sources,
			"last_checkpoint": st.Durability.LastCheckpoint,
		}
		if !st.Durability.LastCheckpoint.IsZero() {
			dur["last_checkpoint_age_seconds"] = time.Since(st.Durability.LastCheckpoint).Seconds()
		}
		if st.Durability.LastCheckpointError != "" {
			dur["last_checkpoint_error"] = st.Durability.LastCheckpointError
		}
		out["durability"] = dur
	}
	rep := map[string]any{"role": st.Replication.Role}
	if st.Replication.Role == "replica" {
		rep["primary"] = st.Replication.Primary
		rep["state"] = st.Replication.State
		rep["applied_seq"] = st.Replication.AppliedSeq
		rep["primary_seq"] = st.Replication.PrimarySeq
		rep["lag"] = st.Replication.Lag
		rep["last_sync"] = st.Replication.LastSync
		rep["bootstrap_mode"] = st.Replication.BootstrapMode
		rep["bootstrap_seconds"] = st.Replication.BootstrapDuration.Seconds()
		if st.Replication.LastError != "" {
			rep["last_error"] = st.Replication.LastError
		}
	}
	out["replication"] = rep
	ing := map[string]any{
		"runs":    st.Ingest.Runs,
		"batches": st.Ingest.Batches,
		"records": st.Ingest.Records,
		"tuples":  st.Ingest.Tuples,
		"bytes":   st.Ingest.Bytes,
		"links":   st.Ingest.Links,
		"timings": map[string]string{
			"parse":  st.Ingest.Parse.String(),
			"batch":  st.Ingest.Batch.String(),
			"link":   st.Ingest.Link.String(),
			"dup":    st.Ingest.Dup.String(),
			"index":  st.Ingest.Index.String(),
			"commit": st.Ingest.Commit.String(),
		},
		"live_sources": st.Ingest.LiveSources,
	}
	if st.Ingest.LastError != "" {
		ing["last_error"] = st.Ingest.LastError
	}
	out["ingest"] = ing
	writeJSON(w, out)
}

func (s *server) handleSources(w http.ResponseWriter, r *http.Request) {
	infos, err := s.db.Sources(r.Context())
	if err != nil {
		s.fail(w, err)
		return
	}
	type src struct {
		Name      string `json:"name"`
		Primary   string `json:"primary"`
		Accession string `json:"accession"`
		Tuples    int    `json:"tuples"`
	}
	out := make([]src, 0, len(infos))
	for _, m := range infos {
		out = append(out, src{Name: m.Name, Primary: m.Primary, Accession: m.Accession, Tuples: m.Tuples})
	}
	writeJSON(w, map[string]any{"sources": out, "count": len(out)})
}

// handleAddSource integrates an uploaded flat file:
//
//	POST /v1/sources?name=<source>&format=<embl|genbank|fasta|obo|csv|tsv|xml>
//	POST /v1/sources?name=<source>&format=<embl|genbank|fasta|csv|tsv>&stream=1[&batch=n]
//
// with the raw file as the request body. Without stream, the body is
// parsed whole (capped at maxUploadBytes — larger uploads get a
// structured 413) and integrated in one AddSource call. With stream=1
// the body is ingested in batches as it arrives: the size cap does not
// apply (memory is bounded by the batch size, not the body size), and
// the response is NDJSON — one progress object per committed batch,
// flushed as it commits, then a final {"done":true,...} summary line.
// A failure mid-stream is reported as a final {"error":{...}} line; the
// batches committed before it remain committed. Integration can take a
// while on big sources; the per-request timeout applies and cancels
// cleanly (streaming ingestion stops at the next batch boundary).
func (s *server) handleAddSource(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	name, format := params.Get("name"), params.Get("format")
	if name == "" || format == "" {
		writeError(w, http.StatusBadRequest, "missing_parameter", "missing query parameter name or format")
		return
	}
	stream, err := boolParam("stream", params.Get("stream"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	if stream {
		batch, err := intParam("batch", params.Get("batch"), 0, 1, 1<<20)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
			return
		}
		s.streamAddSource(w, r, name, format, batch)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	db, err := flatfile.Parse(format, body, name)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds the %d-byte upload limit; use stream=1 to ingest large files in batches", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	rep, err := s.db.AddSource(r.Context(), db)
	if err != nil {
		s.fail(w, err)
		return
	}
	timings := make(map[string]string, len(rep.Timings))
	for _, t := range rep.Timings {
		timings[t.Step] = t.Duration.String()
	}
	writeJSONStatus(w, http.StatusCreated, map[string]any{
		"source":      rep.Source,
		"primary":     rep.Structure.Primary,
		"accession":   rep.Structure.PrimaryAccession,
		"links_added": rep.LinksAdded,
		"timings":     timings,
		"duration":    rep.Duration().String(),
	})
}

// streamAddSource is the stream=1 arm of handleAddSource: batched
// ingestion straight off the request body, with one NDJSON progress
// line per committed batch.
func (s *server) streamAddSource(w http.ResponseWriter, r *http.Request, name, format string, batch int) {
	if !flatfile.Streamable(format) {
		writeError(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("format %q has no streaming scanner (streamable: %s); retry without stream=1",
				format, strings.Join(flatfile.StreamFormats(), ", ")))
		return
	}
	// The handler keeps reading the request body after progress lines
	// start going out. Without full duplex, the HTTP/1.x server finishes
	// off the body at the first response write, and the reads that follow
	// fail with "invalid Read on closed Body" whenever the upload is too
	// large to have been buffered already.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		s.logf("aladind: full-duplex unavailable, streaming ingest of %s may truncate: %v", name, err)
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	opts := []aladin.IngestOption{aladin.WithIngestProgress(func(p aladin.IngestProgress) {
		_ = enc.Encode(map[string]any{
			"batch": p.Batch, "records": p.Records, "tuples": p.Tuples,
			"bytes": p.Bytes, "seq": p.Seq,
		})
		if flusher != nil {
			flusher.Flush()
		}
	})}
	if batch > 0 {
		opts = append(opts, aladin.WithBatchRecords(batch))
	}
	start := time.Now()
	rep, err := s.db.IngestSource(r.Context(), name, format, r.Body, opts...)
	if err != nil {
		// The 200 status line is long gone; surface the failure as a
		// final NDJSON line using the writeError object shape. Committed
		// batches stay committed — the line carries how far we got.
		s.logf("aladind: streaming ingest of %s failed: %v", name, err)
		status, code := errorStatusCode(err)
		var body errorBody
		body.Error.Status = status
		body.Error.Code = code
		body.Error.Message = err.Error()
		out := map[string]any{"error": body.Error}
		if rep != nil {
			out["records"], out["batches"] = rep.Records, rep.Batches
		}
		_ = enc.Encode(out)
		return
	}
	_ = enc.Encode(map[string]any{
		"done": true, "source": rep.Source, "records": rep.Records,
		"tuples": rep.Tuples, "batches": rep.Batches, "bytes": rep.Bytes,
		"links": rep.Links, "seq": rep.LastSeq,
		"duration": time.Since(start).String(),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *server) handleObjects(w http.ResponseWriter, r *http.Request) {
	refs, err := s.db.Objects(r.Context(), r.PathValue("source"))
	if err != nil {
		s.fail(w, err)
		return
	}
	out := make([]refJSON, 0, len(refs))
	for _, ref := range refs {
		out = append(out, toRefJSON(ref))
	}
	writeJSON(w, map[string]any{"objects": out, "count": len(out)})
}

// objectRef resolves the {source}/{accession} path elements against the
// source's discovered primary relation.
func (s *server) objectRef(r *http.Request) (aladin.ObjectRef, error) {
	name := r.PathValue("source")
	info, err := s.db.Source(r.Context(), name)
	if err != nil {
		return aladin.ObjectRef{}, err
	}
	return aladin.ObjectRef{
		Source:    info.Name,
		Relation:  info.Primary,
		Accession: r.PathValue("accession"),
	}, nil
}

func (s *server) handleObject(w http.ResponseWriter, r *http.Request) {
	ref, err := s.objectRef(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.db.Browse(r.Context(), ref)
	if err != nil {
		s.fail(w, err)
		return
	}
	type annotation struct {
		Relation string            `json:"relation"`
		Fields   map[string]string `json:"fields"`
	}
	annotations := make([]annotation, 0, len(v.Annotations))
	for _, a := range v.Annotations {
		annotations = append(annotations, annotation{Relation: a.Relation, Fields: a.Fields})
	}
	duplicates := make([]linkJSON, 0, len(v.Duplicates))
	for _, l := range v.Duplicates {
		duplicates = append(duplicates, toLinkJSON(l))
	}
	linked := make([]linkJSON, 0, len(v.Linked))
	for _, l := range v.Linked {
		linked = append(linked, toLinkJSON(l))
	}
	writeJSON(w, map[string]any{
		"object":      toRefJSON(v.Ref),
		"fields":      v.Fields,
		"annotations": annotations,
		"prev":        v.PrevAccession,
		"next":        v.NextAccession,
		"duplicates":  duplicates,
		"linked":      linked,
	})
}

func (s *server) handleRelated(w http.ResponseWriter, r *http.Request) {
	ref, err := s.objectRef(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	params := r.URL.Query()
	maxLen, err := intParam("maxlen", params.Get("maxlen"), 3, 1, 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	limit, err := intParam("limit", params.Get("limit"), 10, 1, maxQueryLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	scored, err := s.db.Related(r.Context(), ref, maxLen, limit)
	if err != nil {
		s.fail(w, err)
		return
	}
	type related struct {
		Object refJSON `json:"object"`
		Score  float64 `json:"score"`
		Paths  int     `json:"paths"`
	}
	out := make([]related, 0, len(scored))
	for _, sc := range scored {
		out = append(out, related{Object: toRefJSON(sc.Ref), Score: sc.Score, Paths: sc.Paths})
	}
	writeJSON(w, map[string]any{"object": toRefJSON(ref), "related": out, "count": len(out)})
}

func (s *server) handleCrawl(w http.ResponseWriter, r *http.Request) {
	ref, err := s.objectRef(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	depth, err := intParam("depth", r.URL.Query().Get("depth"), 2, 0, 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter", err.Error())
		return
	}
	refs, err := s.db.Crawl(r.Context(), ref, depth)
	if err != nil {
		s.fail(w, err)
		return
	}
	out := make([]refJSON, 0, len(refs))
	for _, c := range refs {
		out = append(out, toRefJSON(c))
	}
	writeJSON(w, map[string]any{"start": toRefJSON(ref), "objects": out, "count": len(out)})
}

// explainMode selects how much plan detail the query envelope carries.
type explainMode int

const (
	explainNone explainMode = iota
	explainPlan
	explainAnalyze
)

// explainParam parses the explain query parameter: boolean values toggle
// the plain access plan, "analyze" additionally executes the query and
// annotates the plan with actual rows and operator times.
func explainParam(s string) (explainMode, error) {
	if strings.TrimSpace(s) == "analyze" {
		return explainAnalyze, nil
	}
	b, err := boolParam("explain", s)
	if err != nil {
		return explainNone, fmt.Errorf("parameter explain: %q (expected 0, 1, true, false, or analyze)", s)
	}
	if b {
		return explainPlan, nil
	}
	return explainNone, nil
}

// boolParam parses a flag-style query parameter; empty means false.
func boolParam(name, s string) (bool, error) {
	switch strings.TrimSpace(s) {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, fmt.Errorf("parameter %s: not a boolean: %q", name, s)
}

// intParam parses an integer query parameter with a default, clamping
// the value into [min, max]. A non-numeric value is an error — callers
// return 400 with a structured body — instead of silently falling back
// to the default; negative and out-of-range values are clamped.
func intParam(name, s string, def, min, max int) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: not an integer: %q", name, s)
	}
	if n < min {
		return min, nil
	}
	if n > max {
		return max, nil
	}
	return n, nil
}
