// Command aladind serves an integrated ALADIN warehouse over HTTP/JSON —
// the §4.6 access modes (SQL query, ranked search, object-web browsing)
// as a stable request/response API on top of the concurrency-safe
// aladin package. Readers are served concurrently, including while a
// POST /v1/sources integration is computing; each request runs under a
// deadline, and SIGINT/SIGTERM drain in-flight requests before exit.
//
// Usage:
//
//	aladind [-addr :8317] [-workers n] [-timeout 30s]
//	        [-proteins 40 | -load snapshot.gob | -empty]
//	        [-data dir] [-checkpoint-every n] [-checkpoint-interval d]
//	        [-replica-of http://primary:8317] [-ready-max-lag n]
//	        [-pprof addr]
//
// -pprof serves net/http/pprof on its own listener and mux (off by
// default; the profiling endpoints never share the public API address),
// e.g. -pprof 127.0.0.1:6060 then
// `go tool pprof http://127.0.0.1:6060/debug/pprof/heap`.
//
// With -data the warehouse is durable: every acknowledged mutation is
// journaled to a write-ahead log under the directory before the HTTP
// response is sent, a background loop (and graceful shutdown) folds the
// log into per-source checkpoint segments, and a restart — clean or
// after a crash — recovers exactly the acknowledged state. Combined
// with -load, the snapshot seeds a fresh data directory; combined with
// -proteins, the demo corpus is only generated when the directory is
// empty.
//
// A durable aladind is also a replication primary: it serves its
// manifest, checkpoint segments, and WAL tail under /v1/repl/. A second
// aladind started with -replica-of pointed at it becomes a read-only
// replica — it bootstraps the primary's checkpoint into its own -data
// directory, streams the WAL continuously, serves the full read API,
// and rejects every write with 403 read_only_replica. Every read
// response carries the snapshot it observed in the X-Aladin-Snapshot
// header; /readyz gates replica traffic on replication lag.
//
// Endpoints:
//
//	GET  /v1/query?q=SQL[&limit=n][&cursor=token][&explain=1]  SQL over the warehouse, paginated
//	GET  /v1/search?q=terms[&source=s][&column=c][&primary=true][&limit=n]
//	GET  /v1/stats                                       repository, web, durability, replication statistics
//	GET  /v1/sources                                     integrated sources
//	POST /v1/sources?name=n&format=f                     integrate an uploaded flat file
//	POST /v1/sources?name=n&format=f&stream=1[&batch=n]  streaming batched ingestion (NDJSON progress; no size cap)
//	GET  /v1/objects/{source}                            a source's primary objects
//	GET  /v1/objects/{source}/{accession}                one object's browse view
//	GET  /v1/objects/{source}/{accession}/related        ranked related objects
//	GET  /v1/objects/{source}/{accession}/crawl          breadth-first link crawl
//	GET  /healthz                                        liveness (always 200 while serving)
//	GET  /readyz                                         readiness (503 on a lagging/stale replica)
//	GET  /v1/repl/{manifest,segment/{name},wal}          replication API (durable primary only)
//
// Errors are structured JSON: {"error":{"status":404,"code":"unknown_source","message":"..."}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8317", "listen address")
		workers  = flag.Int("workers", 0, "pipeline worker pool size (0 = all CPUs, 1 = serial)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
		proteins = flag.Int("proteins", 40, "demo corpus size (proteins per source)")
		load     = flag.String("load", "", "restore a snapshot file instead of the demo corpus")
		empty    = flag.Bool("empty", false, "start with no sources (integrate via POST /v1/sources)")
		dataDir  = flag.String("data", "", "durable data directory (WAL + checkpoints); empty = in-memory only")
		chkEvery = flag.Int("checkpoint-every", 16, "checkpoint after this many journaled mutations (with -data)")
		chkEach  = flag.Duration("checkpoint-interval", time.Minute, "background checkpoint period (with -data; 0 = disabled)")
		replica  = flag.String("replica-of", "", "serve as a read-only replica of the primary aladind at this base URL (requires -data)")
		readyLag = flag.Uint64("ready-max-lag", 64, "replica readiness threshold: /readyz fails above this many un-applied records")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (own mux; empty = disabled)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *timeout, *proteins, *load, *empty, *dataDir, *chkEvery, *chkEach, *replica, *readyLag, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "aladind:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, timeout time.Duration, proteins int, load string, empty bool,
	dataDir string, chkEvery int, chkEach time.Duration, replicaOf string, readyLag uint64, pprofAddr string) error {

	db, err := openDB(workers, proteins, load, empty, dataDir, chkEvery, replicaOf)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		psrv := &http.Server{
			Addr:              pprofAddr,
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		defer psrv.Close()
		go func() {
			log.Printf("aladind: pprof on %s", pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("aladind: pprof: %v", err)
			}
		}()
	}
	hs := newServer(db, timeout)
	hs.readyMaxLag = readyLag
	srv := &http.Server{
		Addr:              addr,
		Handler:           hs.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if dataDir != "" && chkEach > 0 {
		go checkpointLoop(ctx, db, chkEach)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("aladind: serving on %s", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("aladind: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if dataDir != "" {
		// Fold the WAL tail into segments so the next start replays
		// nothing; the WAL itself is already durable, so a failure here
		// costs recovery time, not data.
		if err := db.Checkpoint(shutdownCtx); err != nil {
			log.Printf("aladind: shutdown checkpoint: %v", err)
		}
	}
	return db.Close()
}

// pprofHandler builds a dedicated profiling mux. The import of
// net/http/pprof registers on http.DefaultServeMux as a side effect,
// but aladind never serves that mux — the explicit registrations here
// keep the profiling surface on its own opt-in listener.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// checkpointLoop periodically folds the write-ahead log into checkpoint
// segments, off the request path. Mutations between ticks are already
// durable (journaled before acknowledged); the loop only bounds replay
// time after a crash. Checkpoints with nothing to do are cheap: clean
// sources' segments are never rewritten.
func checkpointLoop(ctx context.Context, db *aladin.DB, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := db.Checkpoint(ctx); err != nil && !errors.Is(err, aladin.ErrClosed) && ctx.Err() == nil {
				log.Printf("aladind: checkpoint: %v", err)
			}
		}
	}
}

// openDB builds the served database: a restored snapshot, a recovered
// data directory, an empty warehouse, or the integrated synthetic demo
// corpus.
func openDB(workers, proteins int, load string, empty bool, dataDir string, chkEvery int, replicaOf string) (*aladin.DB, error) {
	if load != "" && empty {
		return nil, errors.New("-load and -empty are mutually exclusive")
	}
	opts := []aladin.Option{
		aladin.WithWorkers(workers),
		aladin.WithOntologySources("go"),
		// Serving is read-heavy and repetitive (dashboards, paginated
		// cursors re-issuing the same SQL); cache prepared plans.
		aladin.WithPlanCache(128),
	}
	if dataDir != "" {
		opts = append(opts, aladin.WithDataDir(dataDir))
		if chkEvery > 0 {
			opts = append(opts, aladin.WithCheckpointEvery(chkEvery))
		}
	}
	if replicaOf != "" {
		// A replica's entire state comes from the primary's stream; it
		// never seeds, loads, or integrates anything locally.
		if dataDir == "" {
			return nil, errors.New("-replica-of requires -data")
		}
		if load != "" || empty {
			return nil, errors.New("-replica-of is mutually exclusive with -load and -empty")
		}
		db, err := aladin.Open(append(opts, aladin.WithReplicaOf(replicaOf))...)
		if err != nil {
			return nil, err
		}
		st, _ := db.Stats(context.Background())
		log.Printf("aladind: replica of %s: bootstrapped via %s in %v (applied seq %d)",
			replicaOf, st.Replication.BootstrapMode, st.Replication.BootstrapDuration.Round(time.Millisecond), st.Replication.AppliedSeq)
		return db, nil
	}
	if load != "" {
		snap, err := store.LoadFile(load)
		if err != nil {
			return nil, err
		}
		db, err := aladin.Open(append(opts, aladin.WithSnapshot(snap))...)
		if err != nil {
			return nil, err
		}
		log.Printf("aladind: restored snapshot %s", load)
		return db, nil
	}
	db, err := aladin.Open(opts...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if empty {
		return db, nil
	}
	if dataDir != "" {
		// A recovered directory already holds its sources; the demo
		// corpus only seeds a brand-new one.
		infos, err := db.Sources(ctx)
		if err != nil {
			return nil, err
		}
		if len(infos) > 0 {
			log.Printf("aladind: recovered %d sources from %s", len(infos), dataDir)
			return db, nil
		}
	}
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: proteins})
	for _, src := range corpus.Sources {
		t0 := time.Now()
		if _, err := db.AddSource(ctx, src); err != nil {
			return nil, fmt.Errorf("integrating demo source %s: %w", src.Name, err)
		}
		log.Printf("aladind: integrated %s in %v", src.Name, time.Since(t0).Round(time.Millisecond))
	}
	return db, nil
}
