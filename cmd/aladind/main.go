// Command aladind serves an integrated ALADIN warehouse over HTTP/JSON —
// the §4.6 access modes (SQL query, ranked search, object-web browsing)
// as a stable request/response API on top of the concurrency-safe
// aladin package. Readers are served concurrently, including while a
// POST /v1/sources integration is computing; each request runs under a
// deadline, and SIGINT/SIGTERM drain in-flight requests before exit.
//
// Usage:
//
//	aladind [-addr :8317] [-workers n] [-timeout 30s]
//	        [-proteins 40 | -load snapshot.gob | -empty]
//
// Endpoints:
//
//	GET  /v1/query?q=SQL[&limit=n][&cursor=token][&explain=1]  SQL over the warehouse, paginated
//	GET  /v1/search?q=terms[&source=s][&column=c][&primary=true][&limit=n]
//	GET  /v1/stats                                       repository + web statistics
//	GET  /v1/sources                                     integrated sources
//	POST /v1/sources?name=n&format=f                     integrate an uploaded flat file
//	GET  /v1/objects/{source}                            a source's primary objects
//	GET  /v1/objects/{source}/{accession}                one object's browse view
//	GET  /v1/objects/{source}/{accession}/related        ranked related objects
//	GET  /v1/objects/{source}/{accession}/crawl          breadth-first link crawl
//
// Errors are structured JSON: {"error":{"status":404,"code":"unknown_source","message":"..."}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8317", "listen address")
		workers  = flag.Int("workers", 0, "pipeline worker pool size (0 = all CPUs, 1 = serial)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
		proteins = flag.Int("proteins", 40, "demo corpus size (proteins per source)")
		load     = flag.String("load", "", "restore a snapshot file instead of the demo corpus")
		empty    = flag.Bool("empty", false, "start with no sources (integrate via POST /v1/sources)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *timeout, *proteins, *load, *empty); err != nil {
		fmt.Fprintln(os.Stderr, "aladind:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, timeout time.Duration, proteins int, load string, empty bool) error {
	db, err := openDB(workers, proteins, load, empty)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           newServer(db, timeout).handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("aladind: serving on %s", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("aladind: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return db.Close()
}

// openDB builds the served database: a restored snapshot, an empty
// warehouse, or the integrated synthetic demo corpus.
func openDB(workers, proteins int, load string, empty bool) (*aladin.DB, error) {
	if load != "" && empty {
		return nil, errors.New("-load and -empty are mutually exclusive")
	}
	opts := []aladin.Option{
		aladin.WithWorkers(workers),
		aladin.WithOntologySources("go"),
		// Serving is read-heavy and repetitive (dashboards, paginated
		// cursors re-issuing the same SQL); cache prepared plans.
		aladin.WithPlanCache(128),
	}
	if load != "" {
		snap, err := store.LoadFile(load)
		if err != nil {
			return nil, err
		}
		db, err := aladin.Open(append(opts, aladin.WithSnapshot(snap))...)
		if err != nil {
			return nil, err
		}
		log.Printf("aladind: restored snapshot %s", load)
		return db, nil
	}
	db, err := aladin.Open(opts...)
	if err != nil {
		return nil, err
	}
	if empty {
		return db, nil
	}
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: proteins})
	ctx := context.Background()
	for _, src := range corpus.Sources {
		t0 := time.Now()
		if _, err := db.AddSource(ctx, src); err != nil {
			return nil, fmt.Errorf("integrating demo source %s: %w", src.Name, err)
		}
		log.Printf("aladind: integrated %s in %v", src.Name, time.Since(t0).Round(time.Millisecond))
	}
	return db, nil
}
