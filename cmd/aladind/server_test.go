package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
)

// newTestServer serves the demo corpus (2 sources, small) over httptest.
func newTestServer(t *testing.T) (*httptest.Server, *aladin.DB) {
	t.Helper()
	db, err := aladin.Open(aladin.WithOntologySources("go"))
	if err != nil {
		t.Fatal(err)
	}
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 10})
	ctx := context.Background()
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := db.AddSource(ctx, corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(newServer(db, 30*time.Second).handler())
	t.Cleanup(ts.Close)
	return ts, db
}

// getJSON fetches a URL, asserts the status, and decodes the body.
func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET %s content-type = %q", url, ct)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v; body: %s", url, err, body)
	}
	return out
}

// TestHTTPSmoke is the end-to-end smoke test: query and search against
// the demo corpus must return 200 with non-empty JSON payloads.
func TestHTTPSmoke(t *testing.T) {
	ts, _ := newTestServer(t)

	q := getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT COUNT(*) FROM swissprot_protein"), 200)
	if q["count"].(float64) != 1 {
		t.Errorf("query count = %v", q["count"])
	}
	rows := q["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(string) != "10" {
		t.Errorf("query rows = %v", rows)
	}

	sr := getJSON(t, ts.URL+"/v1/search?q=protein+structure&limit=5", 200)
	if sr["count"].(float64) == 0 {
		t.Error("search returned no results")
	}

	st := getJSON(t, ts.URL+"/v1/stats", 200)
	if st["sources"].(float64) != 2 {
		t.Errorf("stats sources = %v", st["sources"])
	}
	if st["links"].(float64) == 0 {
		t.Error("stats links = 0")
	}

	src := getJSON(t, ts.URL+"/v1/sources", 200)
	if src["count"].(float64) != 2 {
		t.Errorf("sources count = %v", src["count"])
	}
}

func TestHTTPObjectEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)

	objs := getJSON(t, ts.URL+"/v1/objects/swissprot", 200)
	if objs["count"].(float64) != 10 {
		t.Fatalf("objects count = %v", objs["count"])
	}
	first := objs["objects"].([]any)[0].(map[string]any)
	acc := first["accession"].(string)

	obj := getJSON(t, ts.URL+"/v1/objects/swissprot/"+acc, 200)
	if len(obj["fields"].(map[string]any)) == 0 {
		t.Error("object view has no fields")
	}
	rel := getJSON(t, ts.URL+"/v1/objects/swissprot/"+acc+"/related?maxlen=2&limit=5", 200)
	if rel["object"].(map[string]any)["accession"] != acc {
		t.Errorf("related echo = %v", rel["object"])
	}
	crawl := getJSON(t, ts.URL+"/v1/objects/swissprot/"+acc+"/crawl?depth=1", 200)
	if crawl["count"].(float64) == 0 {
		t.Error("crawl returned nothing")
	}
}

// TestHTTPErrors asserts the structured error body and status mapping.
func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	cases := []struct {
		url        string
		wantStatus int
		wantCode   string
	}{
		{"/v1/query", 400, "missing_parameter"},
		{"/v1/query?q=" + escape("SELEKT nope"), 400, "bad_query"},
		{"/v1/search", 400, "missing_parameter"},
		{"/v1/objects/nope", 404, "unknown_source"},
		{"/v1/objects/swissprot/NOPE999", 404, "unknown_object"},
		{"/v1/objects/nope/X1/related", 404, "unknown_source"},
	}
	for _, c := range cases {
		body := getJSON(t, ts.URL+c.url, c.wantStatus)
		e := body["error"].(map[string]any)
		if e["code"] != c.wantCode {
			t.Errorf("%s: code = %v, want %s", c.url, e["code"], c.wantCode)
		}
		if e["status"].(float64) != float64(c.wantStatus) {
			t.Errorf("%s: body status = %v", c.url, e["status"])
		}
	}
}

// TestHTTPAddSource uploads a CSV flat file and asserts it becomes
// queryable; a duplicate upload returns 409.
func TestHTTPAddSource(t *testing.T) {
	ts, _ := newTestServer(t)

	csv := "accession,name,description\n" +
		"UP001,hemoglobin alpha,oxygen transport protein chain\n" +
		"UP002,lysozyme C,bacteriolytic enzyme found in secretions\n" +
		"UP003,insulin precursor,glucose regulating hormone precursor\n" +
		"UP004,myoglobin,oxygen storage protein of muscle tissue\n"
	url := ts.URL + "/v1/sources?name=upload&format=csv"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("POST = %d; body: %s", resp.StatusCode, body)
	}
	var rep map[string]any
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep["source"] != "upload" || rep["primary"] == "" {
		t.Errorf("report = %v", rep)
	}

	q := getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT COUNT(*) FROM upload_data"), 200)
	if rows := q["rows"].([]any); rows[0].([]any)[0].(string) != "4" {
		t.Errorf("uploaded rows = %v", rows)
	}

	resp, err = http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("duplicate POST = %d, want 409", resp.StatusCode)
	}
}

// TestHTTPTimeout gives the server a tiny per-request budget and asserts
// a slow integration maps to 504 with the state unwound. The uploaded
// source and the corpus are sized so integration takes hundreds of
// milliseconds: context timers need the scheduler to run the timer
// goroutine, which a sub-10ms CPU-bound burst on a loaded single-core
// box can outrace.
func TestHTTPTimeout(t *testing.T) {
	db, err := aladin.Open(aladin.WithOntologySources("go"))
	if err != nil {
		t.Fatal(err)
	}
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 120})
	ctx := context.Background()
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := db.AddSource(ctx, corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(newServer(db, time.Millisecond).handler())
	defer ts.Close()

	var csv strings.Builder
	csv.WriteString("accession,name,description\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&csv, "UX%04d,uploaded protein variant %d,"+
			"synthetic description of uploaded protein number %d with enough prose to feed text linking\n", i, i, i)
	}
	resp, err := http.Post(ts.URL+"/v1/sources?name=upload&format=csv", "text/csv",
		strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("POST under 1ms deadline = %d; body: %s", resp.StatusCode, body)
	}
	var e map[string]any
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("invalid error JSON: %v", err)
	}
	if code := e["error"].(map[string]any)["code"]; code != "timeout" {
		t.Errorf("error code = %v, want timeout", code)
	}
	st, err := db.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.Sources != 2 {
		t.Errorf("timed-out integration left %d sources, want 2", st.Repo.Sources)
	}
	// The server stays fully usable after the timed-out integration.
	if _, err := db.Query(ctx, "SELECT COUNT(*) FROM swissprot_protein"); err != nil {
		t.Errorf("query after timeout: %v", err)
	}
}

func escape(s string) string {
	r := strings.NewReplacer(" ", "+", "*", "%2A", "(", "%28", ")", "%29")
	return r.Replace(s)
}

// TestHTTPQueryPagination pages through a query with limit + cursor,
// asserting bounded, disjoint pages and a terminating next_cursor.
func TestHTTPQueryPagination(t *testing.T) {
	ts, _ := newTestServer(t)
	q := escape("SELECT accession FROM swissprot_protein ORDER BY accession")

	seen := map[string]bool{}
	var pages []int
	cursor := ""
	for page := 0; ; page++ {
		if page > 5 {
			t.Fatal("pagination did not terminate")
		}
		url := ts.URL + "/v1/query?q=" + q + "&limit=4"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		body := getJSON(t, url, 200)
		if body["limit"].(float64) != 4 {
			t.Errorf("page %d: limit echo = %v, want 4", page, body["limit"])
		}
		rows := body["rows"].([]any)
		pages = append(pages, len(rows))
		for _, r := range rows {
			acc := r.([]any)[0].(string)
			if seen[acc] {
				t.Errorf("page %d: row %q repeated across pages", page, acc)
			}
			seen[acc] = true
		}
		next, more := body["next_cursor"].(string)
		if !more {
			break
		}
		if len(rows) != 4 {
			t.Errorf("page %d: non-final page has %d rows, want 4", page, len(rows))
		}
		cursor = next
	}
	if len(seen) != 10 {
		t.Errorf("pages covered %d distinct rows, want 10", len(seen))
	}
	if want := []int{4, 4, 2}; len(pages) != 3 || pages[0] != want[0] || pages[1] != want[1] || pages[2] != want[2] {
		t.Errorf("page sizes = %v, want %v", pages, want)
	}
}

// TestHTTPQueryCap: without an explicit limit the server enforces the
// default cap and reports it in the envelope.
func TestHTTPQueryCap(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT accession FROM swissprot_protein"), 200)
	if body["limit"].(float64) != defaultQueryLimit {
		t.Errorf("default limit echo = %v, want %d", body["limit"], defaultQueryLimit)
	}
	// An absurd limit is clamped to the hard cap, not honored.
	body = getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT accession FROM swissprot_protein")+"&limit=999999", 200)
	if body["limit"].(float64) != maxQueryLimit {
		t.Errorf("oversized limit echo = %v, want %d", body["limit"], maxQueryLimit)
	}
	// Negative limits clamp to 1 instead of silently using the default.
	body = getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT accession FROM swissprot_protein")+"&limit=-5", 200)
	if body["count"].(float64) != 1 {
		t.Errorf("limit=-5 returned count %v, want 1", body["count"])
	}
}

// TestHTTPQueryBadCursor: malformed or replayed cursors are rejected
// with a structured 400.
func TestHTTPQueryBadCursor(t *testing.T) {
	ts, _ := newTestServer(t)
	q := escape("SELECT accession FROM swissprot_protein")

	body := getJSON(t, ts.URL+"/v1/query?q="+q+"&cursor=%21%21not-base64", 400)
	if code := body["error"].(map[string]any)["code"]; code != "bad_cursor" {
		t.Errorf("garbage cursor code = %v, want bad_cursor", code)
	}

	// A valid cursor bound to a different query must not be replayable.
	first := getJSON(t, ts.URL+"/v1/query?q="+q+"&limit=2", 200)
	cursor, ok := first["next_cursor"].(string)
	if !ok {
		t.Fatal("no next_cursor on first page")
	}
	other := escape("SELECT accession FROM pdb_structure")
	body = getJSON(t, ts.URL+"/v1/query?q="+other+"&cursor="+cursor, 400)
	if code := body["error"].(map[string]any)["code"]; code != "bad_cursor" {
		t.Errorf("replayed cursor code = %v, want bad_cursor", code)
	}
}

// TestHTTPInvalidIntParams: non-numeric limit/depth/maxlen values return
// 400 with a structured body instead of silently using the default.
func TestHTTPInvalidIntParams(t *testing.T) {
	ts, _ := newTestServer(t)
	objs := getJSON(t, ts.URL+"/v1/objects/swissprot", 200)
	acc := objs["objects"].([]any)[0].(map[string]any)["accession"].(string)

	for _, url := range []string{
		"/v1/query?q=" + escape("SELECT 1") + "&limit=abc",
		"/v1/search?q=protein&limit=abc",
		"/v1/objects/swissprot/" + acc + "/related?maxlen=abc",
		"/v1/objects/swissprot/" + acc + "/related?limit=1e3",
		"/v1/objects/swissprot/" + acc + "/crawl?depth=two",
	} {
		body := getJSON(t, ts.URL+url, 400)
		if code := body["error"].(map[string]any)["code"]; code != "invalid_parameter" {
			t.Errorf("%s: code = %v, want invalid_parameter", url, code)
		}
	}
	// Negative values clamp instead of erroring.
	if body := getJSON(t, ts.URL+"/v1/search?q=protein&limit=-3", 200); body["count"].(float64) > 1 {
		t.Errorf("search limit=-3 returned %v results, want at most 1", body["count"])
	}
}

// TestHTTPQueryRejectsDML: /v1/query is read-only.
func TestHTTPQueryRejectsDML(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getJSON(t, ts.URL+"/v1/query?q="+escape("DROP TABLE swissprot_protein"), 400)
	if code := body["error"].(map[string]any)["code"]; code != "bad_query" {
		t.Errorf("DML code = %v, want bad_query", code)
	}
}

// TestHTTPQueryExplain: explain=1 adds the access plan to the envelope,
// naming the chosen access paths.
func TestHTTPQueryExplain(t *testing.T) {
	ts, _ := newTestServer(t)

	q := escape("SELECT entry_name FROM swissprot_protein WHERE accession = 'P10001'")
	res := getJSON(t, ts.URL+"/v1/query?q="+q+"&explain=1", 200)
	plan, ok := res["plan"].(string)
	if !ok || plan == "" {
		t.Fatalf("explain=1 returned no plan: %v", res)
	}
	if !strings.Contains(plan, "IndexScan(swissprot_protein") {
		t.Errorf("plan does not name the index access path:\n%s", plan)
	}
	if res["count"].(float64) != 1 {
		t.Errorf("explain=1 suppressed rows: %v", res)
	}

	// Without the flag no plan is attached.
	res = getJSON(t, ts.URL+"/v1/query?q="+q, 200)
	if _, present := res["plan"]; present {
		t.Error("plan attached without explain=1")
	}

	// Bad boolean is a structured 400.
	res = getJSON(t, ts.URL+"/v1/query?q="+q+"&explain=yes", 400)
	if code := res["error"].(map[string]any)["code"]; code != "invalid_parameter" {
		t.Errorf("error code = %v", code)
	}
}

// TestHTTPQueryUnknownParameter: typos like limt=10 are rejected with a
// structured 400 instead of silently applying defaults.
func TestHTTPQueryUnknownParameter(t *testing.T) {
	ts, _ := newTestServer(t)

	q := escape("SELECT COUNT(*) FROM swissprot_protein")
	res := getJSON(t, ts.URL+"/v1/query?q="+q+"&limt=10", 400)
	errObj := res["error"].(map[string]any)
	if errObj["code"] != "unknown_parameter" {
		t.Errorf("error code = %v", errObj["code"])
	}
	if msg := errObj["message"].(string); !strings.Contains(msg, "limt") {
		t.Errorf("message does not name the bad parameter: %q", msg)
	}
	// The known parameters still pass.
	getJSON(t, ts.URL+"/v1/query?q="+q+"&limit=10&explain=0", 200)
}

// TestStreamUploadFullDuplex drives the stream=1 contract through a real
// HTTP connection with a body the server cannot pre-buffer: the request
// is fed through a pipe, and the second half is only written AFTER the
// first NDJSON progress line has come back. Reading the body after the
// response has started requires full-duplex HTTP/1.x — without it the
// remaining reads fail with "invalid Read on closed Body".
func TestStreamUploadFullDuplex(t *testing.T) {
	db, err := aladin.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts := httptest.NewServer(newServer(db, 30*time.Second).handler())
	t.Cleanup(ts.Close)

	fasta := func(start, n int) string {
		var sb strings.Builder
		for i := start; i < start+n; i++ {
			fmt.Fprintf(&sb, ">SQ%06d streamed record %d\nACDEFGHIKLMNPQRSTVWY\n", i, i)
		}
		return sb.String()
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sources?name=seqs&format=fasta&stream=1&batch=100", pr)
	if err != nil {
		t.Fatal(err)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := io.WriteString(pw, fasta(0, 120))
		writeErr <- err
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-ndjson") {
		t.Fatalf("status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}

	lines := json.NewDecoder(resp.Body)
	var first map[string]any
	if err := lines.Decode(&first); err != nil {
		t.Fatalf("first progress line: %v", err)
	}
	if first["batch"] != float64(1) || first["records"] != float64(100) {
		t.Fatalf("first progress = %v", first)
	}

	// The response has started; the rest of the body follows now.
	if _, err := io.WriteString(pw, fasta(120, 180)); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	var last map[string]any
	for {
		var line map[string]any
		if err := lines.Decode(&line); err != nil {
			t.Fatalf("progress stream broke after %v: %v", last, err)
		}
		if e, failed := line["error"]; failed {
			t.Fatalf("ingest failed mid-stream: %v", e)
		}
		if done, _ := line["done"].(bool); done {
			last = line
			break
		}
		last = line
	}
	if last["records"] != float64(300) || last["batches"] != float64(3) {
		t.Fatalf("done line = %v", last)
	}

	res := getJSON(t, ts.URL+"/v1/query?q="+escape("SELECT COUNT(*) FROM seqs_fasta"), 200)
	if rows := fmt.Sprint(res["rows"]); rows != "[[300]]" {
		t.Fatalf("row count after streamed upload = %s", rows)
	}
}
