// Command experiments regenerates every table and figure of the paper's
// evaluation programme (DESIGN.md §3 maps each experiment id to the paper
// item it reproduces). Run with no arguments for the full suite, or name
// experiment ids (e1 ... e12) to run a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	workers := flag.Int("workers", 0, "pipeline worker pool size (0 = all CPUs, 1 = serial)")
	flag.Parse()
	experiments.Workers = *workers
	if flag.NArg() == 0 {
		tables, err := experiments.All()
		for _, t := range tables {
			t.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, arg := range flag.Args() {
		tbl, err := run(strings.ToLower(arg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		tbl.Print(os.Stdout)
	}
}

func run(id string) (experiments.Table, error) {
	switch id {
	case "e1":
		return experiments.E1Table1(40)
	case "e2":
		return experiments.E2Pipeline(40)
	case "e3":
		return experiments.E3BioSQL()
	case "e4":
		return experiments.E4PrimaryPR(40)
	case "e5":
		return experiments.E5ForeignKeyPR(40)
	case "e6":
		return experiments.E6XRefPR(40)
	case "e7":
		return experiments.E7SequencePR(30)
	case "e8":
		return experiments.E8TextPR(40)
	case "e9":
		return experiments.E9DuplicatePR(40)
	case "e10":
		return experiments.E10Scaling()
	case "e11":
		return experiments.E11ChangeThreshold(40)
	case "e12":
		return experiments.E12SearchBrowse(40)
	}
	return experiments.Table{}, fmt.Errorf("unknown experiment %q (use e1..e12)", id)
}
