// Command aladin is the command-line front end of the ALADIN system: it
// imports flat-file data sources, runs the five-step almost-automatic
// integration pipeline, and exposes the three access modes (browse,
// search, SQL query) of §4.6.
//
// Usage:
//
//	aladin demo                          integrate the synthetic corpus and report
//	aladin import <format> <file> <name> parse a source file and show its structure
//	                                     (formats: embl, genbank, fasta, obo, csv, tsv, xml)
//	aladin query "<sql>"                 run SQL over the integrated demo corpus
//	aladin search "<terms>"              ranked full-text search over the demo corpus
//	aladin browse <source> <accession>   show one object's web view
//	aladin stats                         repository statistics for the demo corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discovery"
	"repro/internal/flatfile"
	"repro/internal/metadata"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/store"
)

// workerCount is the -workers flag: the pipeline worker pool size
// (0 = all CPUs, 1 = serial).
var workerCount int

func main() {
	flag.IntVar(&workerCount, "workers", 0, "pipeline worker pool size (0 = all CPUs, 1 = serial)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "demo":
		err = cmdDemo()
	case "import":
		err = cmdImport(args[1:])
	case "query":
		err = cmdQuery(args[1:])
	case "search":
		err = cmdSearch(args[1:])
	case "browse":
		err = cmdBrowse(args[1:])
	case "stats":
		err = cmdStats()
	case "save":
		err = cmdSave(args[1:])
	case "load":
		err = cmdLoad(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aladin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aladin [-workers n] <command> [args]

commands:
  demo                            integrate the synthetic corpus and report
  import <format> <file> <name>   parse and analyze one source file
  query "<sql>"                   SQL over the integrated demo corpus
  search "<terms>"                ranked full-text search (demo corpus)
  browse <source> <accession>     object web view (demo corpus)
  stats                           repository statistics (demo corpus)
  save <file>                     integrate the demo corpus and snapshot it
  load <file>                     restore a snapshot and report its contents`)
}

// demoSystem integrates the standard synthetic corpus.
func demoSystem() (*core.System, error) {
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 40})
	sys := core.New(core.Options{OntologySources: []string{"go"}, Workers: workerCount})
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			return nil, fmt.Errorf("integrating %s: %w", src.Name, err)
		}
	}
	return sys, nil
}

func cmdDemo() error {
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 40})
	sys := core.New(core.Options{OntologySources: []string{"go"}, Workers: workerCount})
	fmt.Println("ALADIN demo: integrating the synthetic life-science corpus")
	fmt.Println()
	for _, src := range corpus.Sources {
		rep, err := sys.AddSource(src)
		if err != nil {
			return fmt.Errorf("integrating %s: %w", src.Name, err)
		}
		fmt.Printf("source %-10s primary=%-10s accession=%-12s (%d relations, %d tuples)\n",
			src.Name, rep.Structure.Primary, rep.Structure.PrimaryAccession,
			src.Len(), src.TotalTuples())
		for _, t := range rep.Timings {
			fmt.Printf("    %-22s %v\n", t.Step, t.Duration)
		}
		if len(rep.LinksAdded) > 0 {
			var parts []string
			for _, k := range sortedKeys(rep.LinksAdded) {
				parts = append(parts, fmt.Sprintf("%s=%d", k, rep.LinksAdded[k]))
			}
			fmt.Printf("    new links: %s\n", strings.Join(parts, " "))
		}
	}
	fmt.Println()
	st := sys.Repo.Stats()
	fmt.Printf("integrated %d sources, %d object links (%v), %d removed by feedback\n",
		st.Sources, st.Links, st.LinksByType, st.RemovedLinks)
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdImport(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: aladin import <format> <file> <name>")
	}
	format, path, name := args[0], args[1], args[2]
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var db *rel.Database
	switch format {
	case "embl":
		db, err = flatfile.ParseEMBL(f, name)
	case "genbank":
		db, err = flatfile.ParseGenBank(f, name)
	case "fasta":
		db, err = flatfile.ParseFASTA(f, name)
	case "obo":
		db, err = flatfile.ParseOBO(f, name)
	case "csv":
		db, err = flatfile.ParseCSV(f, name, "data", ',')
	case "tsv":
		db, err = flatfile.ParseCSV(f, name, "data", '\t')
	case "xml":
		db, err = flatfile.ParseXML(f, name)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("imported %s: %d relations, %d tuples\n", name, db.Len(), db.TotalTuples())
	profs, err := profile.ProfileDatabase(db, profile.Options{Workers: parallel.Workers(workerCount)})
	if err != nil {
		return err
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Print(st.Report())
	return nil
}

func cmdQuery(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin query \"<sql>\"")
	}
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	res, err := sys.Query(args[0])
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.AsString()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func cmdSearch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin search \"<terms>\"")
	}
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	results := sys.Search(args[0], search.Filter{}, 10)
	for i, r := range results {
		fmt.Printf("%2d. [%.2f] %s:%s (%s.%s)\n      %s\n", i+1, r.Score,
			r.Document.Object.Source, r.Document.Object.Accession,
			r.Document.Relation, r.Document.Column,
			search.Snippet(r, args[0], 70))
	}
	if len(results) == 0 {
		fmt.Println("no results")
	}
	return nil
}

func cmdBrowse(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: aladin browse <source> <accession>")
	}
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	m := sys.Repo.Source(args[0])
	if m == nil {
		return fmt.Errorf("unknown source %q", args[0])
	}
	ref := metadata.ObjectRef{Source: m.Name, Relation: m.Structure.Primary, Accession: args[1]}
	v, err := sys.Browse(ref)
	if err != nil {
		return err
	}
	fmt.Printf("object %s\n", v.Ref)
	for _, k := range sortedFieldKeys(v.Fields) {
		fmt.Printf("  %-14s %s\n", k, v.Fields[k])
	}
	if v.PrevAccession != "" || v.NextAccession != "" {
		fmt.Printf("same relation: prev=%s next=%s\n", v.PrevAccession, v.NextAccession)
	}
	if len(v.Annotations) > 0 {
		fmt.Printf("annotations (%d secondary objects):\n", len(v.Annotations))
		for _, a := range v.Annotations {
			fmt.Printf("  [%s] %v\n", a.Relation, a.Fields)
		}
	}
	for _, l := range v.Linked {
		fmt.Printf("linked: %s -> %s (%s, conf %.2f)\n", l.From, l.To, l.Method, l.Confidence)
	}
	for _, l := range v.Duplicates {
		fmt.Printf("duplicate: %s ~ %s (conf %.2f)\n", l.From, l.To, l.Confidence)
	}
	return nil
}

func sortedFieldKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdSave(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin save <file>")
	}
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	if err := store.SaveFile(args[0], sys.Snapshot()); err != nil {
		return err
	}
	st := sys.Repo.Stats()
	fmt.Printf("saved %d sources and %d links to %s\n", st.Sources, st.Links, args[0])
	return nil
}

func cmdLoad(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin load <file>")
	}
	snap, err := store.LoadFile(args[0])
	if err != nil {
		return err
	}
	sys, err := core.Load(core.Options{OntologySources: []string{"go"}, Workers: workerCount}, snap)
	if err != nil {
		return err
	}
	st := sys.Repo.Stats()
	fmt.Printf("restored %d sources, %d links %v\n", st.Sources, st.Links, st.LinksByType)
	ws := sys.WebStats()
	fmt.Printf("object web: %d objects, %d components, mean degree %.1f\n",
		ws.Objects, ws.Components, ws.MeanDegree)
	return nil
}

func cmdStats() error {
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	st := sys.Repo.Stats()
	fmt.Printf("sources: %d\n", st.Sources)
	fmt.Printf("links:   %d\n", st.Links)
	for _, k := range sortedKeys(st.LinksByType) {
		fmt.Printf("  %-10s %d\n", k, st.LinksByType[k])
	}
	for _, m := range sys.Repo.Sources() {
		fmt.Printf("source %-10s primary=%-10s tuples=%d\n", m.Name, m.Structure.Primary, m.TupleCount)
	}
	ws := sys.WebStats()
	fmt.Printf("object web: %d objects (%d linked), %d components (largest %d), mean degree %.1f\n",
		ws.Objects, ws.LinkedObjects, ws.Components, ws.LargestComponent, ws.MeanDegree)
	return nil
}
