// Command aladin is the command-line front end of the ALADIN system: it
// imports flat-file data sources, runs the five-step almost-automatic
// integration pipeline, and exposes the three access modes (browse,
// search, SQL query) of §4.6 — all through the public aladin package.
//
// Usage:
//
//	aladin demo                          integrate the synthetic corpus and report
//	aladin import <format> <file> <name> parse a source file and show its structure
//	                                     (formats: embl, genbank, fasta, obo, csv, tsv, xml)
//	aladin query "<sql>"                 run SQL over the integrated demo corpus
//	aladin explain [-analyze] "<sql>"    show the access plan the query would use
//	                                     (-analyze executes it and adds actual rows/times)
//	aladin search "<terms>"              ranked full-text search over the demo corpus
//	aladin browse <source> <accession>   show one object's web view
//	aladin stats                         repository statistics for the demo corpus
//	aladin checkpoint <data-dir>         recover a durable directory and checkpoint it
//	aladin live [-format fasta] [-batch n] <file> [<name>]
//	                                     tail a growing flat file into a source until
//	                                     interrupted, committing batches as they fill
//
// Flags may be given before or after the subcommand: both
// `aladin -workers 4 demo` and `aladin demo -workers 4` work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/aladin"
	"repro/internal/datagen"
	"repro/internal/discovery"
	"repro/internal/flatfile"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/store"
)

// workerCount is the -workers flag: the pipeline and query worker pool
// size (0 = all CPUs, 1 = serial).
var workerCount int

// analyzeFlag is the -analyze flag of the explain subcommand: execute
// the query and annotate the plan with actual rows and times.
var analyzeFlag bool

// formatFlag and batchFlag configure the live subcommand: the streaming
// flat-file format being tailed and the records per committed batch.
var (
	formatFlag = "fasta"
	batchFlag  int
)

func main() {
	global := newFlagSet("aladin")
	global.Usage = usage
	global.Parse(os.Args[1:])
	args := global.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	run, ok := commands()[cmd]
	if !ok {
		usage()
		os.Exit(2)
	}
	// Per-subcommand parse: flags placed after the subcommand
	// ("aladin demo -workers 4") are honored, not silently ignored.
	fs := newFlagSet("aladin " + cmd)
	fs.Parse(rest)
	if err := run(fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "aladin:", err)
		os.Exit(1)
	}
}

// newFlagSet defines the shared flags; later parses override earlier
// values, so global and per-subcommand placement both work.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.IntVar(&workerCount, "workers", workerCount, "pipeline and query worker pool size (0 = all CPUs, 1 = serial)")
	fs.BoolVar(&analyzeFlag, "analyze", analyzeFlag, "with explain: execute the query and report actual rows and times")
	fs.StringVar(&formatFlag, "format", formatFlag, "with live: streaming flat-file format (embl, genbank, fasta, csv, tsv)")
	fs.IntVar(&batchFlag, "batch", batchFlag, "with live: records per committed batch (0 = default)")
	return fs
}

func commands() map[string]func([]string) error {
	return map[string]func([]string) error{
		"demo":       func(args []string) error { return cmdDemo() },
		"import":     cmdImport,
		"query":      cmdQuery,
		"explain":    cmdExplain,
		"search":     cmdSearch,
		"browse":     cmdBrowse,
		"stats":      func(args []string) error { return cmdStats() },
		"save":       cmdSave,
		"load":       cmdLoad,
		"checkpoint": cmdCheckpoint,
		"live":       cmdLive,
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aladin [-workers n] <command> [flags] [args]

commands:
  demo                            integrate the synthetic corpus and report
  import <format> <file> <name>   parse and analyze one source file
  query "<sql>"                   SQL over the integrated demo corpus
  explain [-analyze] "<sql>"      show the access plan the query would use
                                  (-analyze executes it and adds actual rows/times)
  search "<terms>"                ranked full-text search (demo corpus)
  browse <source> <accession>     object web view (demo corpus)
  stats                           repository statistics (demo corpus)
  save <file>                     integrate the demo corpus and snapshot it
  load <file>                     restore a snapshot and report its contents
  checkpoint <data-dir>           recover a durable data directory and fold
                                  its write-ahead log into checkpoint segments
  live [-format f] [-batch n] <file> [<name>]
                                  tail a growing flat file into a source until
                                  Ctrl-C, committing batches as they fill

flags (accepted before or after the command):
  -workers n                      pipeline worker pool size (0 = all CPUs)

an argument beginning with "-" must follow a "--" terminator, e.g.
  aladin search -- "-terminal domain"`)
}

// demoDB integrates the standard synthetic corpus through the public API.
func demoDB(ctx context.Context) (*aladin.DB, error) {
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 40})
	db, err := aladin.Open(aladin.WithOntologySources("go"), aladin.WithWorkers(workerCount))
	if err != nil {
		return nil, err
	}
	for _, src := range corpus.Sources {
		if _, err := db.AddSource(ctx, src); err != nil {
			return nil, fmt.Errorf("integrating %s: %w", src.Name, err)
		}
	}
	return db, nil
}

func cmdDemo() error {
	ctx := context.Background()
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: 40})
	db, err := aladin.Open(aladin.WithOntologySources("go"), aladin.WithWorkers(workerCount))
	if err != nil {
		return err
	}
	fmt.Println("ALADIN demo: integrating the synthetic life-science corpus")
	fmt.Println()
	for _, src := range corpus.Sources {
		rep, err := db.AddSource(ctx, src)
		if err != nil {
			return fmt.Errorf("integrating %s: %w", src.Name, err)
		}
		fmt.Printf("source %-10s primary=%-10s accession=%-12s (%d relations, %d tuples)\n",
			src.Name, rep.Structure.Primary, rep.Structure.PrimaryAccession,
			src.Len(), src.TotalTuples())
		for _, t := range rep.Timings {
			fmt.Printf("    %-22s %v\n", t.Step, t.Duration)
		}
		if len(rep.LinksAdded) > 0 {
			var parts []string
			for _, k := range sortedKeys(rep.LinksAdded) {
				parts = append(parts, fmt.Sprintf("%s=%d", k, rep.LinksAdded[k]))
			}
			fmt.Printf("    new links: %s\n", strings.Join(parts, " "))
		}
	}
	fmt.Println()
	st, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("integrated %d sources, %d object links (%v), %d removed by feedback\n",
		st.Repo.Sources, st.Repo.Links, st.Repo.LinksByType, st.Repo.RemovedLinks)
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdImport(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: aladin import <format> <file> <name>")
	}
	format, path, name := args[0], args[1], args[2]
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := flatfile.Parse(format, f, name)
	if err != nil {
		return err
	}
	fmt.Printf("imported %s: %d relations, %d tuples\n", name, db.Len(), db.TotalTuples())
	profs, err := profile.ProfileDatabase(db, profile.Options{Workers: parallel.Workers(workerCount)})
	if err != nil {
		return err
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Print(st.Report())
	return nil
}

func cmdQuery(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin query \"<sql>\"")
	}
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	// Stream rows to stdout as they are produced; a LIMIT query prints
	// its rows without materializing the full result first.
	rows, err := db.QueryRows(ctx, args[0])
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Println(strings.Join(rows.Columns(), "\t"))
	n := 0
	for rows.Next() {
		fmt.Println(strings.Join(rows.RowStrings(), "\t"))
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d rows)\n", n)
	return nil
}

func cmdExplain(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin explain [-analyze] \"<sql>\"")
	}
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	var text string
	if analyzeFlag {
		text, err = db.ExplainAnalyze(ctx, args[0])
	} else {
		text, err = db.Explain(ctx, args[0])
	}
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func cmdSearch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin search \"<terms>\"")
	}
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	results, err := db.Search(ctx, args[0], aladin.SearchFilter{}, 10)
	if err != nil {
		return err
	}
	for i, r := range results {
		fmt.Printf("%2d. [%.2f] %s:%s (%s.%s)\n      %s\n", i+1, r.Score,
			r.Document.Object.Source, r.Document.Object.Accession,
			r.Document.Relation, r.Document.Column,
			aladin.Snippet(r, args[0], 70))
	}
	if len(results) == 0 {
		fmt.Println("no results")
	}
	return nil
}

func cmdBrowse(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: aladin browse <source> <accession>")
	}
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	info, err := db.Source(ctx, args[0])
	if err != nil {
		return err
	}
	ref := aladin.ObjectRef{Source: info.Name, Relation: info.Primary, Accession: args[1]}
	v, err := db.Browse(ctx, ref)
	if err != nil {
		return err
	}
	fmt.Printf("object %s\n", v.Ref)
	for _, k := range sortedFieldKeys(v.Fields) {
		fmt.Printf("  %-14s %s\n", k, v.Fields[k])
	}
	if v.PrevAccession != "" || v.NextAccession != "" {
		fmt.Printf("same relation: prev=%s next=%s\n", v.PrevAccession, v.NextAccession)
	}
	if len(v.Annotations) > 0 {
		fmt.Printf("annotations (%d secondary objects):\n", len(v.Annotations))
		for _, a := range v.Annotations {
			fmt.Printf("  [%s] %v\n", a.Relation, a.Fields)
		}
	}
	for _, l := range v.Linked {
		fmt.Printf("linked: %s -> %s (%s, conf %.2f)\n", l.From, l.To, l.Method, l.Confidence)
	}
	for _, l := range v.Duplicates {
		fmt.Printf("duplicate: %s ~ %s (conf %.2f)\n", l.From, l.To, l.Confidence)
	}
	return nil
}

func sortedFieldKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdSave(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin save <file>")
	}
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	snap, err := db.Snapshot(ctx)
	if err != nil {
		return err
	}
	if err := store.SaveFile(args[0], snap); err != nil {
		return err
	}
	st, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("saved %d sources and %d links to %s\n", st.Repo.Sources, st.Repo.Links, args[0])
	return nil
}

func cmdLoad(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin load <file>")
	}
	ctx := context.Background()
	snap, err := store.LoadFile(args[0])
	if err != nil {
		return err
	}
	db, err := aladin.Open(aladin.WithOntologySources("go"),
		aladin.WithWorkers(workerCount), aladin.WithSnapshot(snap))
	if err != nil {
		return err
	}
	st, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("restored %d sources, %d links %v\n", st.Repo.Sources, st.Repo.Links, st.Repo.LinksByType)
	fmt.Printf("object web: %d objects, %d components, mean degree %.1f\n",
		st.Web.Objects, st.Web.Components, st.Web.MeanDegree)
	return nil
}

// cmdCheckpoint recovers a durable data directory — last checkpoint plus
// WAL tail — and folds the tail into fresh checkpoint segments, so the
// next open replays nothing. Useful after killing an aladind that had no
// chance to checkpoint.
func cmdCheckpoint(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: aladin checkpoint <data-dir>")
	}
	ctx := context.Background()
	db, err := aladin.Open(aladin.WithOntologySources("go"),
		aladin.WithWorkers(workerCount), aladin.WithDataDir(args[0]))
	if err != nil {
		return err
	}
	defer db.Close()
	before, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d sources, %d links, %d WAL records from %s\n",
		before.Repo.Sources, before.Repo.Links, before.Durability.WALRecords, args[0])
	if err := db.Checkpoint(ctx); err != nil {
		return err
	}
	after, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint generation %d: %d source segments, WAL empty\n",
		after.Durability.Gen, after.Durability.Sources)
	return nil
}

// cmdLive tails a growing flat file into a source until interrupted:
// existing content streams in immediately, records appended to the file
// afterwards are committed as batches fill. Ctrl-C stops the tail; the
// final partial batch is committed before exit — the live end of the
// streaming ingestion subsystem, for watching a download or an
// instrument write records while they become queryable.
func cmdLive(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: aladin live [-format f] [-batch n] <file> [<name>]")
	}
	path := args[0]
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if len(args) == 2 {
		name = args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := aladin.Open(aladin.WithWorkers(workerCount))
	if err != nil {
		return err
	}
	defer db.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("tailing %s into source %q (%s); Ctrl-C to stop\n", path, name, formatFlag)
	// The tail reader blocks at end-of-file until more data arrives and
	// reports EOF when the signal context fires; the ingest run itself is
	// not canceled, so the final partial batch still commits.
	tail := aladin.NewTailReader(ctx, f, 0)
	rep, err := db.IngestSource(context.Background(), name, formatFlag, tail,
		aladin.WithBatchRecords(batchFlag),
		aladin.WithFlushStall(500*time.Millisecond),
		aladin.WithIngestProgress(func(p aladin.IngestProgress) {
			fmt.Printf("  batch %d: %d records, %d tuples, %d bytes, seq %d\n",
				p.Batch, p.Records, p.Tuples, p.Bytes, p.Seq)
		}))
	if rep != nil {
		fmt.Printf("ingested %d records (%d tuples) in %d batches, %d links\n",
			rep.Records, rep.Tuples, rep.Batches, rep.Links)
	}
	return err
}

func cmdStats() error {
	ctx := context.Background()
	db, err := demoDB(ctx)
	if err != nil {
		return err
	}
	st, err := db.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("sources: %d\n", st.Repo.Sources)
	fmt.Printf("links:   %d\n", st.Repo.Links)
	for _, k := range sortedKeys(st.Repo.LinksByType) {
		fmt.Printf("  %-10s %d\n", k, st.Repo.LinksByType[k])
	}
	infos, err := db.Sources(ctx)
	if err != nil {
		return err
	}
	for _, m := range infos {
		fmt.Printf("source %-10s primary=%-10s tuples=%d\n", m.Name, m.Primary, m.Tuples)
	}
	fmt.Printf("object web: %d objects (%d linked), %d components (largest %d), mean degree %.1f\n",
		st.Web.Objects, st.Web.LinkedObjects, st.Web.Components, st.Web.LargestComponent, st.Web.MeanDegree)
	return nil
}
